//! The simulated cluster: a worker pool plus shared communication metrics
//! and the task-level half of the fault-tolerance subsystem.
//!
//! Workers are real OS threads (scoped), so partition-parallel operators
//! genuinely run in parallel; "communication" is modeled as movement of
//! rows between partitions and is charged to [`CommStats`].
//!
//! Every partition task runs under a **task supervisor**: the closure is
//! executed inside `catch_unwind`, so a panicking worker is captured as
//! [`MuraError::WorkerFailed`] instead of aborting the process, and
//! retryable failures (captured panics, transient errors — injected by the
//! [`FaultPlan`] or genuine) are retried with bounded exponential backoff.
//! Cancellation and deadlines are re-checked before every attempt, so a
//! cancelled query stops retrying immediately.

use crate::fault::{FaultPlan, RecoveryPolicy};
use crate::metrics::CommStats;
use crate::wire::TraceCtx;
use mura_core::{CancellationToken, MuraError, Relation, Result, Row, Schema};
use mura_obs::TraceEvent;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Everything a communication backend needs to run one exchange or
/// broadcast: the fault plan and site coordinates for deterministic
/// injection, the metrics sink for traffic accounting, the recovery policy
/// bounding repair loops, and the cancellation token.
pub struct ExchangeCtx<'a> {
    /// Fault plan driving injected drops/dups (both backends) and
    /// kills/connection-drops/socket-delays (process backend).
    pub fault: &'a FaultPlan,
    /// Driver-allocated fault site of this exchange.
    pub site: u64,
    /// Communication counters of the owning cluster.
    pub metrics: &'a CommStats,
    /// Bounds internal repair/retry loops.
    pub recovery: &'a RecoveryPolicy,
    /// Checked between repair attempts so cancelled queries stop promptly.
    pub cancel: Option<&'a CancellationToken>,
    /// Number of workers (= partitions).
    pub workers: usize,
    /// Trace context stamped onto data-plane frames (all-zero when the
    /// query is not being traced).
    pub trace: TraceCtx,
}

/// Liveness/repair counters of a communication backend (the process
/// backend's supervisor view; the in-process simulator reports `None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterHealth {
    /// Configured worker count.
    pub workers: u64,
    /// Workers currently answering heartbeats.
    pub live: u64,
    /// Worker processes respawned since startup.
    pub respawns: u64,
    /// Control/heartbeat connections re-established since startup.
    pub reconnects: u64,
    /// Heartbeat deadlines missed by the supervisor since startup.
    pub liveness_misses: u64,
    /// Total bytes written to worker sockets (heartbeats included).
    pub wire_tx_bytes: u64,
    /// Total bytes read from worker sockets (heartbeats included).
    pub wire_rx_bytes: u64,
    /// Worker-side spans evicted from bounded rings before they could be
    /// flushed to the coordinator.
    pub trace_dropped: u64,
    /// Relay frames handled by workers (worker-side count).
    pub worker_relay_frames: u64,
    /// Deliver frames handled by workers (worker-side count).
    pub worker_deliver_frames: u64,
    /// Take frames handled by workers (worker-side count).
    pub worker_take_frames: u64,
    /// Broadcast frames handled by workers (worker-side count).
    pub worker_bcast_frames: u64,
}

/// What a supervisor journal entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorEventKind {
    /// A dead worker process was respawned.
    Respawn,
    /// A control/heartbeat connection was re-established.
    Reconnect,
    /// A heartbeat deadline was missed (the worker may be respawned next).
    LivenessMiss,
}

impl SupervisorEventKind {
    /// Stable lowercase name (Prometheus label value / journal rendering).
    pub fn name(self) -> &'static str {
        match self {
            SupervisorEventKind::Respawn => "respawn",
            SupervisorEventKind::Reconnect => "reconnect",
            SupervisorEventKind::LivenessMiss => "liveness_miss",
        }
    }
}

/// One supervisor journal entry: what happened to which worker, when
/// (µs on the coordinator's clock since backend startup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Monotonic sequence number (journal order survives ring eviction).
    pub seq: u64,
    /// The coordinator [`Instant`] the event was journaled at.
    pub at: Instant,
    /// Affected worker index.
    pub worker: u32,
    /// What happened.
    pub kind: SupervisorEventKind,
}

/// The communication fabric behind a [`Cluster`]: how bucketed exchange
/// data and broadcast relations move between partitions. The fixpoint
/// drivers never see this seam — they call [`Cluster::exchange_at`] /
/// [`Cluster::broadcast_rel`] and run unchanged on either backend.
///
/// Implementations: [`SimBackend`] (the in-process simulator — buckets are
/// merged driver-side, deterministic and dependency-free) and
/// [`crate::proc::ProcCluster`] (separate worker OS processes moving the
/// same buckets over length-delimited TCP frames).
pub trait CommBackend: Send + Sync + std::fmt::Debug {
    /// Short backend name for diagnostics (`"sim"` / `"proc"`).
    fn name(&self) -> &'static str;

    /// Fixed worker count this backend supports, if any. [`Cluster`]
    /// creation asserts compatibility when `Some`.
    fn worker_count(&self) -> Option<usize> {
        None
    }

    /// Performs one hash exchange: `buckets[from][to]` holds the rows
    /// worker `from` routed to worker `to`; the result is the merged
    /// partition of every destination. At-least-once delivery with set
    /// semantics: injected drops are retransmitted, injected duplicates
    /// are absorbed by the set merge.
    fn exchange(
        &self,
        ctx: &ExchangeCtx<'_>,
        schema: &Schema,
        buckets: Vec<Vec<Vec<Row>>>,
    ) -> Result<Vec<Relation>>;

    /// Replicates `rel` to every worker. Row accounting is already done by
    /// the caller; the process backend additionally moves the bytes.
    fn broadcast(&self, ctx: &ExchangeCtx<'_>, rel: &Relation) -> Result<()>;

    /// Supervisor health, when the backend has one.
    fn health(&self) -> Option<ClusterHealth> {
        None
    }

    /// Drains worker-side spans of `trace_id` into coordinator-clock
    /// [`TraceEvent`]s with timestamps relative to `base` (the trace
    /// sink's start instant), returning `(events, dropped)` where
    /// `dropped` counts spans evicted from worker rings before they could
    /// be flushed. The simulator has no remote spans — its workers record
    /// directly into the coordinator sink — so the default is empty,
    /// which keeps sim and proc traces identical modulo worker lanes.
    fn flush_trace(&self, _trace_id: u64, _base: Instant) -> (Vec<TraceEvent>, u64) {
        (Vec::new(), 0)
    }
}

/// The in-process simulator backend: buckets are merged on the driver;
/// injected drops are counted-and-retransmitted and injected duplicates
/// delivered twice, exactly as the exchange layer always behaved.
#[derive(Debug, Default)]
pub struct SimBackend;

impl CommBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn exchange(
        &self,
        ctx: &ExchangeCtx<'_>,
        schema: &Schema,
        buckets: Vec<Vec<Vec<Row>>>,
    ) -> Result<Vec<Relation>> {
        let mut parts: Vec<Relation> =
            (0..ctx.workers).map(|_| Relation::new(schema.clone())).collect();
        for (from, worker_buckets) in buckets.into_iter().enumerate() {
            for (t, bucket) in worker_buckets.into_iter().enumerate() {
                if ctx.fault.is_active() && !bucket.is_empty() {
                    if ctx.fault.drop_exchange(ctx.site, from, t) {
                        // Lost in transit: the receiver's ack times out and
                        // the sender retransmits — we deliver the retry.
                        ctx.fault.record_time_lost(std::time::Duration::from_micros(
                            bucket.len() as u64
                        ));
                    }
                    if ctx.fault.duplicate_exchange(ctx.site, from, t) {
                        for row in &bucket {
                            parts[t].insert(row.clone());
                        }
                    }
                }
                for row in bucket {
                    parts[t].insert(row);
                }
            }
        }
        Ok(parts)
    }

    fn broadcast(&self, _ctx: &ExchangeCtx<'_>, _rel: &Relation) -> Result<()> {
        // Replication is free in the simulator: workers share the driver's
        // address space, so the broadcast variable is the `Arc` itself.
        Ok(())
    }
}

/// A simulated Spark-like cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: usize,
    metrics: Arc<CommStats>,
    fault: Arc<FaultPlan>,
    recovery: RecoveryPolicy,
    cancel: Option<CancellationToken>,
    backend: Arc<dyn CommBackend>,
    /// Current trace context, updated by the evaluator at fixpoint /
    /// superstep boundaries and stamped onto every exchange or broadcast
    /// the drivers run in between. Shared across clones like the metrics.
    trace_ctx: Arc<Mutex<TraceCtx>>,
}

impl Cluster {
    /// A cluster with `workers` workers (the paper uses 4) and no fault
    /// injection.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Cluster {
            workers,
            metrics: Arc::new(CommStats::default()),
            fault: Arc::new(FaultPlan::disabled()),
            recovery: RecoveryPolicy::default(),
            cancel: None,
            backend: Arc::new(SimBackend),
            trace_ctx: Arc::new(Mutex::new(TraceCtx::default())),
        }
    }

    /// Attaches a fault plan and recovery policy (see [`crate::fault`]).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, recovery: RecoveryPolicy) -> Self {
        self.fault = plan;
        self.recovery = recovery;
        self
    }

    /// Attaches a cancellation token, consulted before every task attempt
    /// (including retries) so cancelled queries stop retrying.
    pub fn with_cancel(mut self, cancel: Option<CancellationToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Swaps the communication backend (default: [`SimBackend`]). The
    /// worker counts must agree — partitions map 1:1 onto backend workers.
    pub fn with_backend(mut self, backend: Arc<dyn CommBackend>) -> Self {
        if let Some(n) = backend.worker_count() {
            assert_eq!(
                n, self.workers,
                "backend has {n} workers but the cluster was built for {}",
                self.workers
            );
        }
        self.backend = backend;
        self
    }

    /// Number of workers (= number of partitions of every dataset).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shared communication counters.
    pub fn metrics(&self) -> &CommStats {
        &self.metrics
    }

    /// The fault plan tasks are supervised under.
    pub fn fault(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// The task recovery policy.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// The communication backend moving exchange/broadcast data.
    pub fn backend(&self) -> &Arc<dyn CommBackend> {
        &self.backend
    }

    /// Supervisor health of the backend (process mode), if it has one.
    pub fn health(&self) -> Option<ClusterHealth> {
        self.backend.health()
    }

    /// Updates the trace context stamped onto subsequent data-plane
    /// frames. The evaluator calls this at fixpoint and superstep
    /// boundaries; with tracing off the context stays all-zero.
    pub fn set_trace_ctx(&self, ctx: TraceCtx) {
        *self.trace_ctx.lock().unwrap_or_else(|e| e.into_inner()) = ctx;
    }

    /// The trace context currently in effect.
    pub fn trace_ctx(&self) -> TraceCtx {
        *self.trace_ctx.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs one hash exchange through the backend at fault site `site`:
    /// `buckets[from][to]` are the rows worker `from` routed to worker
    /// `to`; returns the merged destination partitions.
    pub fn exchange_at(
        &self,
        site: u64,
        schema: &Schema,
        buckets: Vec<Vec<Vec<Row>>>,
    ) -> Result<Vec<Relation>> {
        let ctx = ExchangeCtx {
            fault: &self.fault,
            site,
            metrics: &self.metrics,
            recovery: &self.recovery,
            cancel: self.cancel.as_ref(),
            workers: self.workers,
            trace: self.trace_ctx(),
        };
        self.backend.exchange(&ctx, schema, buckets)
    }

    /// Replicates `rel` to every worker through the backend, recording the
    /// row accounting. The simulator's broadcast is free (shared address
    /// space); the process backend ships the encoded relation to each
    /// worker and allocates its own fault site internally, so simulator
    /// fault streams are unaffected by this call.
    pub fn broadcast_rel(&self, rel: &Relation) -> Result<()> {
        self.metrics.record_broadcast(rel.len() as u64, self.workers);
        let ctx = ExchangeCtx {
            fault: &self.fault,
            site: 0,
            metrics: &self.metrics,
            recovery: &self.recovery,
            cancel: self.cancel.as_ref(),
            workers: self.workers,
            trace: self.trace_ctx(),
        };
        self.backend.broadcast(&ctx, rel)
    }

    /// Runs `f(i, &items[i])` on every worker in parallel, collecting the
    /// results in worker order. A worker panic is captured and reported as
    /// [`MuraError::WorkerFailed`] after the supervisor's retries are
    /// exhausted — one bad partition no longer aborts the process.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_par_map(items, |i, item| Ok(f(i, item)))
    }

    /// Like [`Cluster::par_map`] for fallible tasks: `Err` results
    /// short-circuit (retryable ones after supervision).
    ///
    /// Adds **stage-level recovery** on top of the in-task retries: the
    /// tasks of a stage are pure functions of `items`, so when one site
    /// exhausts its retries the whole stage re-runs at a fresh site
    /// (Spark's lineage recomputation, bounded by
    /// [`RecoveryPolicy::max_restores`]). Fixpoint supersteps bypass this
    /// through [`Cluster::try_par_map_at`] — their failures escalate to the
    /// superstep supervisor's checkpoint restore / restart instead.
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> Result<R> + Sync,
    {
        let mut reruns = 0u32;
        loop {
            match self.try_par_map_at(self.fault.next_site(), 0, items, &f) {
                Err(e) if e.is_retryable() && reruns < self.recovery.max_restores => {
                    if let Some(c) = &self.cancel {
                        c.check()?;
                    }
                    reruns += 1;
                    self.fault.record_stage_rerun();
                }
                other => return other,
            }
        }
    }

    /// The full supervisor entry point: runs the tasks at an explicit fault
    /// `site` with attempt numbering starting at `attempt_base`. Superstep
    /// supervisors (the `P_gld` driver) pin the site across replays of the
    /// same superstep so afflicted sites heal deterministically after
    /// `failures_per_site` attempts.
    pub fn try_par_map_at<T, R, F>(
        &self,
        site: u64,
        attempt_base: u32,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> Result<R> + Sync,
    {
        assert_eq!(items.len(), self.workers, "one item per worker expected");
        if self.workers == 1 {
            return Ok(vec![self.run_task(site, attempt_base, 0, &items[0], &f)?]);
        }
        let results: Vec<Result<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    s.spawn({
                        let f = &f;
                        move || self.run_task(site, attempt_base, i, item, f)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| {
                    h.join().unwrap_or_else(|payload| {
                        // The supervisor catches task panics inside the
                        // thread; reaching this means the harness itself
                        // failed. Still report instead of aborting.
                        Err(MuraError::WorkerFailed {
                            worker: i,
                            payload: payload_text(payload.as_ref()),
                        })
                    })
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Runs one partition task under supervision: fault injection, panic
    /// capture, bounded retries with backoff, cancellation checks.
    fn run_task<T, R, F>(
        &self,
        site: u64,
        attempt_base: u32,
        i: usize,
        item: &T,
        f: &F,
    ) -> Result<R>
    where
        F: Fn(usize, &T) -> Result<R>,
    {
        let mut retry = 0u32;
        loop {
            let attempt = attempt_base + retry;
            // A cancelled or deadline-expired query must not keep retrying.
            if let Some(c) = &self.cancel {
                c.check()?;
            }
            if let Some(delay) = self.fault.straggler_delay(site, i, 0, attempt) {
                std::thread::sleep(delay);
            }
            let started = std::time::Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<R> {
                self.fault.maybe_panic(site, i, 0, attempt);
                self.fault.maybe_transient(site, i, 0, attempt)?;
                self.fault.maybe_memory_pressure(site, i, 0, attempt)?;
                f(i, item)
            }))
            .unwrap_or_else(|payload| {
                Err(MuraError::WorkerFailed { worker: i, payload: payload_text(payload.as_ref()) })
            });
            match outcome {
                Ok(r) => return Ok(r),
                Err(e) if e.is_retryable() => {
                    self.fault.record_time_lost(started.elapsed());
                    if retry >= self.recovery.max_retries {
                        return Err(e);
                    }
                    self.fault.record_retry();
                    let backoff = self.recovery.backoff(retry);
                    self.fault.record_time_lost(backoff);
                    std::thread::sleep(backoff);
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Extracts a human-readable message from a captured panic payload.
pub(crate) fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

impl Default for Cluster {
    /// The paper's 4-worker setup.
    fn default() -> Self {
        Cluster::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    #[test]
    fn par_map_preserves_order() {
        let c = Cluster::new(4);
        let data = vec![1u64, 2, 3, 4];
        let out = c.par_map(&data, |i, x| (i, x * 10)).unwrap();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let c = Cluster::new(1);
        let out = c.par_map(&[7u64], |_, x| x + 1).unwrap();
        assert_eq!(out, vec![8]);
    }

    #[test]
    #[should_panic(expected = "one item per worker")]
    fn wrong_partition_count_panics() {
        let c = Cluster::new(2);
        let _ = c.par_map(&[1], |_, x| *x);
    }

    #[test]
    fn metrics_shared_across_clones() {
        let c = Cluster::new(2);
        let c2 = c.clone();
        c.metrics().record_shuffle(5);
        assert_eq!(c2.metrics().snapshot().rows_shuffled, 5);
    }

    #[test]
    fn worker_panic_becomes_error_not_abort() {
        let c = Cluster::new(4);
        let data = vec![0u64, 1, 2, 3];
        let err = c
            .par_map(&data, |_, x| {
                if *x == 2 {
                    panic!("boom on partition 2");
                }
                *x
            })
            .unwrap_err();
        match err {
            MuraError::WorkerFailed { worker, payload } => {
                assert_eq!(worker, 2);
                assert!(payload.contains("boom"), "{payload}");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn injected_transient_is_retried_to_success() {
        // failures_per_site(1) ≤ max_retries(2): every afflicted site heals
        // within the retry budget, so the map always succeeds.
        let cfg = FaultConfig { transient_prob: 0.9, seed: 5, ..Default::default() };
        let plan = Arc::new(FaultPlan::new(cfg));
        let c = Cluster::new(4).with_faults(Arc::clone(&plan), RecoveryPolicy::default());
        let data = vec![1u64, 2, 3, 4];
        let out = c.par_map(&data, |_, x| x * 2).unwrap();
        assert_eq!(out, vec![2, 4, 6, 8]);
        let s = plan.snapshot();
        assert!(s.injected_transients > 0, "{s}");
        assert_eq!(s.task_retries, s.injected_transients, "each injection costs one retry");
    }

    #[test]
    fn injected_panic_is_retried_to_success() {
        let cfg = FaultConfig { panic_prob: 0.9, seed: 6, ..Default::default() };
        let plan = Arc::new(FaultPlan::new(cfg));
        let c = Cluster::new(4).with_faults(Arc::clone(&plan), RecoveryPolicy::default());
        let data = vec![1u64, 2, 3, 4];
        let out = c.par_map(&data, |_, x| *x).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert!(plan.snapshot().injected_panics > 0);
    }

    #[test]
    fn hard_fault_exhausts_retries() {
        // failures_per_site far above max_retries: the afflicted site never
        // heals within one task's budget, so the error escalates.
        let cfg = FaultConfig {
            transient_prob: 1.0,
            failures_per_site: 100,
            seed: 1,
            ..Default::default()
        };
        let plan = Arc::new(FaultPlan::new(cfg));
        let policy = RecoveryPolicy { max_retries: 2, backoff_base_ms: 0, ..Default::default() };
        let c = Cluster::new(2).with_faults(plan, policy);
        let err = c.par_map(&[1u64, 2], |_, x| *x).unwrap_err();
        assert!(matches!(err, MuraError::TransientFault { .. }), "{err:?}");
    }

    #[test]
    fn cancellation_stops_retry_loop() {
        let cfg = FaultConfig {
            transient_prob: 1.0,
            failures_per_site: 1_000,
            seed: 2,
            ..Default::default()
        };
        let plan = Arc::new(FaultPlan::new(cfg));
        // Enough retries that an un-checked loop would spin visibly long.
        let policy =
            RecoveryPolicy { max_retries: 10_000, backoff_base_ms: 1, ..Default::default() };
        let token = CancellationToken::new();
        token.cancel();
        let c = Cluster::new(2).with_faults(plan, policy).with_cancel(Some(token));
        let err = c.par_map(&[1u64, 2], |_, x| *x).unwrap_err();
        assert!(matches!(err, MuraError::Cancelled), "{err:?}");
    }

    #[test]
    fn straggler_injection_counted() {
        let cfg = FaultConfig {
            straggler_prob: 1.0,
            straggler_delay_ms: 1,
            seed: 3,
            ..Default::default()
        };
        let plan = Arc::new(FaultPlan::new(cfg));
        let c = Cluster::new(2).with_faults(Arc::clone(&plan), RecoveryPolicy::default());
        let out = c.par_map(&[1u64, 2], |_, x| *x).unwrap();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(plan.snapshot().injected_stragglers, 2);
    }
}
