//! # mura-dist — distributed evaluation of μ-RA terms
//!
//! This crate is the Rust substitute for the Spark substrate the paper
//! deploys on: an in-process cluster simulator with explicit partitions,
//! hash shuffles, broadcasts and **communication accounting**, plus the
//! paper's two distributed fixpoint plans:
//!
//! * `P_gld` — *global loop on the driver*: each semi-naive
//!   iteration runs as distributed dataset operations; the union/distinct
//!   forces **at least one shuffle per iteration** (paper §IV-A1);
//! * `P_plw` — *parallel local loops on the workers*: the constant
//!   part is partitioned across workers (by a **stable column** when one
//!   exists — then local results are provably disjoint and the final
//!   `distinct` is skipped, paper §IV-A2) and every worker runs its own
//!   semi-naive loop against broadcast step relations — **no communication
//!   during the recursion**.
//!
//! `P_plw` has two worker-local engines, mirroring the paper's two
//! implementations (§IV-B): [`localfix::LocalEngine::SetRdd`] (hash-based,
//! after BigDatalog's SetRDD) and [`localfix::LocalEngine::Sorted`]
//! (sort-merge based, standing in for the per-worker PostgreSQL instances
//! of `P_plw^pg`).
//!
//! The top-level entry point is [`QueryEngine`]: UCRPQ → μ-RA → rewrite →
//! physical plan → distributed execution with [`CommStats`].

pub mod asyncfix;
pub mod cluster;
pub mod distrel;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod localfix;
pub mod metrics;
pub mod proc;
pub mod sorted;
pub mod wire;
pub mod worker;

pub use cluster::{
    Cluster, ClusterHealth, CommBackend, ExchangeCtx, SimBackend, SupervisorEvent,
    SupervisorEventKind,
};
pub use distrel::DistRel;
pub use engine::{explain_plan, PlannedQuery, QueryEngine, QueryOutput};
pub use exec::{DistEvaluator, ExecConfig, ExecStats, FixResume, FixpointPlan, ResourceLimits};
pub use fault::{FaultConfig, FaultPlan, FaultSnapshot, RecoveryPolicy};
pub use localfix::LocalEngine;
pub use metrics::{CommSnapshot, CommStats};
pub use mura_obs::{QueryTrace, TraceLevel};
pub use proc::{ProcCluster, ProcClusterConfig};
pub use wire::{TraceCtx, WorkerSpan};
