//! A sort-based local relational engine.
//!
//! Stands in for the per-worker PostgreSQL instances of the paper's
//! `P_plw^pg` plan (Fig. 7 compares it against the hash-based SetRDD
//! implementation): relations are kept as sorted, deduplicated row vectors;
//! joins are sort-merge joins; unions and differences are linear merges.

use mura_core::relation::join_plan;
use mura_core::{Relation, Row, Schema, Sym, Value};

/// A relation stored as a sorted `Vec<Row>` (no duplicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedRelation {
    schema: Schema,
    rows: Vec<Row>,
}

impl SortedRelation {
    /// Empty relation.
    pub fn new(schema: Schema) -> Self {
        SortedRelation { schema, rows: Vec::new() }
    }

    /// Converts from a hash relation (sorts once).
    pub fn from_relation(rel: &Relation) -> Self {
        let mut rows: Vec<Row> = rel.iter().cloned().collect();
        rows.sort_unstable();
        SortedRelation { schema: rel.schema().clone(), rows }
    }

    /// Converts back to a hash relation.
    pub fn to_relation(&self) -> Relation {
        Relation::from_rows(self.schema.clone(), self.rows.iter().cloned())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Builds from raw rows (sorts and deduplicates once).
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Self {
        SortedRelation::from_sorted(schema, rows)
    }

    fn from_sorted(schema: Schema, mut rows: Vec<Row>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        SortedRelation { schema, rows }
    }

    /// Rows satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&[Value]) -> bool) -> SortedRelation {
        SortedRelation {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// ρ_from^to.
    pub fn rename(&self, from: Sym, to: Sym) -> SortedRelation {
        let new_schema = self.schema.rename(from, to).expect("invalid rename");
        let perm: Vec<usize> = new_schema
            .columns()
            .iter()
            .map(|&c| {
                let oc = if c == to { from } else { c };
                self.schema.position(oc).unwrap()
            })
            .collect();
        let rows: Vec<Row> =
            self.rows.iter().map(|r| perm.iter().map(|&p| r[p]).collect::<Row>()).collect();
        SortedRelation::from_sorted(new_schema, rows)
    }

    /// π̃ of the given columns (sort + dedup).
    pub fn antiproject(&self, drop: &[Sym]) -> SortedRelation {
        let new_schema = self.schema.antiproject(drop).expect("invalid antiprojection");
        let keep: Vec<usize> =
            new_schema.columns().iter().map(|&c| self.schema.position(c).unwrap()).collect();
        let rows: Vec<Row> =
            self.rows.iter().map(|r| keep.iter().map(|&p| r[p]).collect::<Row>()).collect();
        SortedRelation::from_sorted(new_schema, rows)
    }

    /// Sort-merge natural join on the common columns.
    pub fn join(&self, other: &SortedRelation) -> SortedRelation {
        let plan = join_plan(&self.schema, &other.schema);
        if self.is_empty() || other.is_empty() {
            return SortedRelation::new(plan.out_schema);
        }
        // Sort both sides by join key.
        let key_of = |row: &Row, pos: &[usize]| -> Row { pos.iter().map(|&p| row[p]).collect() };
        let mut left: Vec<(Row, &Row)> =
            self.rows.iter().map(|r| (key_of(r, &plan.left_key), r)).collect();
        let mut right: Vec<(Row, &Row)> =
            other.rows.iter().map(|r| (key_of(r, &plan.right_key), r)).collect();
        left.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        right.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            match left[i].0.cmp(&right[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Emit the cross product of the equal-key groups.
                    let key = left[i].0.clone();
                    let i_end = left[i..].iter().take_while(|(k, _)| *k == key).count() + i;
                    let j_end = right[j..].iter().take_while(|(k, _)| *k == key).count() + j;
                    for (_, lrow) in &left[i..i_end] {
                        for (_, rrow) in &right[j..j_end] {
                            let row: Row = plan
                                .out_src
                                .iter()
                                .map(|&(from_left, p)| if from_left { lrow[p] } else { rrow[p] })
                                .collect();
                            out.push(row);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        SortedRelation::from_sorted(plan.out_schema, out)
    }

    /// Merge union (schemas must match).
    pub fn union(&self, other: &SortedRelation) -> SortedRelation {
        assert_eq!(self.schema, other.schema);
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut out = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.rows[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.rows[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.rows[i..]);
        out.extend(other.rows[j..].iter().cloned());
        SortedRelation { schema: self.schema.clone(), rows: out }
    }

    /// Merge difference `self \ other`.
    pub fn minus(&self, other: &SortedRelation) -> SortedRelation {
        assert_eq!(self.schema, other.schema);
        if other.is_empty() || self.is_empty() {
            return self.clone();
        }
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.rows.len() {
            if j >= other.rows.len() {
                out.extend(self.rows[i..].iter().cloned());
                break;
            }
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.rows[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        SortedRelation { schema: self.schema.clone(), rows: out }
    }

    /// Antijoin on common columns (sorted key lookup).
    pub fn antijoin(&self, other: &SortedRelation) -> SortedRelation {
        let common = self.schema.intersection(&other.schema);
        if common.is_empty() {
            return if other.is_empty() {
                self.clone()
            } else {
                SortedRelation::new(self.schema.clone())
            };
        }
        let my_pos: Vec<usize> = common.iter().map(|&c| self.schema.position(c).unwrap()).collect();
        let their_pos: Vec<usize> =
            common.iter().map(|&c| other.schema.position(c).unwrap()).collect();
        let mut keys: Vec<Row> =
            other.rows.iter().map(|r| their_pos.iter().map(|&p| r[p]).collect::<Row>()).collect();
        keys.sort_unstable();
        keys.dedup();
        let rows = self
            .rows
            .iter()
            .filter(|r| {
                let k: Row = my_pos.iter().map(|&p| r[p]).collect();
                keys.binary_search(&k).is_err()
            })
            .cloned()
            .collect();
        SortedRelation { schema: self.schema.clone(), rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Database;

    fn pair_rel(db: &mut Database, pairs: &[(u64, u64)]) -> Relation {
        let src = db.intern("src");
        let dst = db.intern("dst");
        Relation::from_pairs(src, dst, pairs.iter().copied())
    }

    /// Every sorted-engine op must agree with the hash engine.
    #[test]
    fn agrees_with_hash_engine() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let r1 = pair_rel(&mut db, &[(1, 2), (2, 3), (3, 4), (2, 5)]);
        let r2 = pair_rel(&mut db, &[(2, 3), (5, 6)]);
        let s1 = SortedRelation::from_relation(&r1);
        let s2 = SortedRelation::from_relation(&r2);

        assert_eq!(s1.rename(src, m).to_relation().sorted_rows(), r1.rename(src, m).sorted_rows());
        assert_eq!(
            s1.antiproject(&[src]).to_relation().sorted_rows(),
            r1.antiproject(&[src]).sorted_rows()
        );
        assert_eq!(s1.union(&s2).to_relation().sorted_rows(), r1.union(&r2).sorted_rows());
        assert_eq!(s1.minus(&s2).to_relation().sorted_rows(), r1.minus(&r2).sorted_rows());
        let j_sorted = s1.rename(dst, m).join(&s2.rename(src, m));
        let j_hash = r1.rename(dst, m).join(&r2.rename(src, m));
        assert_eq!(j_sorted.to_relation().sorted_rows(), j_hash.sorted_rows());
        assert_eq!(s1.antijoin(&s2).to_relation().sorted_rows(), r1.antijoin(&r2).sorted_rows());
    }

    #[test]
    fn join_emits_full_group_product() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        // Two rows ending at 2, two rows starting at 2 → 4 combinations.
        let left = pair_rel(&mut db, &[(1, 2), (9, 2)]);
        let right = pair_rel(&mut db, &[(2, 3), (2, 4)]);
        let j = SortedRelation::from_relation(&left.rename(dst, m))
            .join(&SortedRelation::from_relation(&right.rename(src, m)));
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn round_trip_and_dedup() {
        let mut db = Database::new();
        let r = pair_rel(&mut db, &[(1, 2), (1, 2), (3, 4)]);
        let s = SortedRelation::from_relation(&r);
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_relation().sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn filter_by_position() {
        let mut db = Database::new();
        let src = db.intern("src");
        let r = pair_rel(&mut db, &[(1, 2), (2, 3)]);
        let s = SortedRelation::from_relation(&r);
        let pos = r.schema().position(src).unwrap();
        let f = s.filter(|row| row[pos] == Value::node(1));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn disjoint_antijoin_cases() {
        let mut db = Database::new();
        let a = db.intern("a");
        let r = pair_rel(&mut db, &[(1, 2)]);
        let empty_other = SortedRelation::new(Schema::new(vec![a]));
        let s = SortedRelation::from_relation(&r);
        assert_eq!(s.antijoin(&empty_other).len(), 1);
        let nonempty = SortedRelation::from_sorted(
            Schema::new(vec![a]),
            vec![vec![Value::node(9)].into_boxed_slice()],
        );
        assert_eq!(s.antijoin(&nonempty).len(), 0);
    }
}
