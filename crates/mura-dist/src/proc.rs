//! The multi-process cluster backend: workers are separate OS processes.
//!
//! [`ProcCluster`] spawns `n` copies of the `mura-worker` binary, learns
//! their ephemeral loopback ports from stdout, and connects a control
//! socket plus a dedicated heartbeat socket to each. It implements
//! [`CommBackend`], so the three fixpoint drivers run **unchanged** — only
//! the exchange/broadcast data plane moves:
//!
//! * `exchange`: each source partition's buckets are serialized once and
//!   relayed to the source worker ([`Msg::Relay`]), which forwards every
//!   bucket to its destination peer over a worker↔worker connection; the
//!   coordinator then collects each destination's inbox ([`Msg::Take`]).
//!   Every exchanged partition genuinely crosses sockets, so the
//!   [`crate::metrics::CommStats`] wire counters measure real traffic — the basis of the
//!   paper's `P_plw` zero-communication claim, asserted in measured bytes.
//! * `broadcast`: the encoded relation is shipped to every worker
//!   ([`Msg::Bcast`]).
//!
//! Computation stays on the coordinator's task threads (partition tasks
//! are Rust closures and cannot cross a process boundary); the workers are
//! the communication fabric, and they can *really die*. A supervisor
//! thread heartbeats every worker; a worker that misses its liveness
//! deadline (killed, or its connection dropped) is detected, respawned
//! when dead, and re-announced to its peers. Exchanges ride an
//! at-least-once retry loop with fresh exchange ids (stale buffers are
//! pruned by watermark), and failures that out-live the local repair
//! budget escalate as retryable [`mura_core::MuraError::WorkerFailed`] into the
//! existing recovery ladder (task retry → stage rerun → checkpoint restore
//! → restart).
//!
//! Fault injection: [`FaultPlan`] process-mode decisions map to real
//! damage — [`FaultPlan::kill_worker`] is an actual `SIGKILL` of the
//! worker process between the relay and collect phases (buffered data is
//! genuinely lost), [`FaultPlan::drop_connection`] severs the control
//! socket, [`FaultPlan::delay_socket`] stalls before the operation.
//! Orphans are impossible: each worker holds the read end of its stdin
//! pipe and exits on EOF, so coordinator death (clean or not) reaps it.

use crate::cluster::{
    ClusterHealth, CommBackend, ExchangeCtx, SupervisorEvent, SupervisorEventKind,
};
use crate::fault::FaultPlan;
use crate::wire::{
    decode_rows, encode_relation, encode_rows, read_frame, write_corrupted_frame, write_frame, Msg,
    WireError, SPAN_BCAST, SPAN_DELIVER, SPAN_RELAY, SPAN_TAKE,
};
use mura_core::{Relation, Result, Row, Schema};
use mura_obs::histogram::HistogramSnapshot;
use mura_obs::{EventKind, Histogram, TraceEvent};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ProcCluster`].
#[derive(Debug, Clone)]
pub struct ProcClusterConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Supervisor heartbeat period.
    pub heartbeat: Duration,
    /// A worker that does not answer a heartbeat within this deadline is
    /// declared suspect (respawned if its process is dead).
    pub liveness_timeout: Duration,
    /// Read/write timeout on control sockets.
    pub io_timeout: Duration,
    /// How long a worker blocks a [`Msg::Take`] waiting for in-flight
    /// exchange buckets before handing back a short count (the coordinator
    /// then retries the whole exchange). Must stay below
    /// [`ProcClusterConfig::io_timeout`].
    pub take_timeout: Duration,
    /// Bounded connection attempts (exponential backoff between them).
    pub connect_attempts: u32,
    /// Worker binary path override. Default resolution: `MURA_WORKER_BIN`
    /// env var, then a `mura-worker` sibling of the current executable.
    pub worker_bin: Option<PathBuf>,
}

impl Default for ProcClusterConfig {
    fn default() -> Self {
        ProcClusterConfig {
            workers: 4,
            heartbeat: Duration::from_millis(50),
            liveness_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
            take_timeout: Duration::from_millis(2000),
            connect_attempts: 5,
            worker_bin: None,
        }
    }
}

/// Mutable control-plane state of one worker, behind one lock so spawn,
/// kill and send never race. Never acquire two workers' `ctl` locks at
/// once (peer-table refreshes go worker by worker).
#[derive(Debug, Default)]
struct CtlSlot {
    child: Option<Child>,
    conn: Option<TcpStream>,
    port: u16,
}

/// One worker as seen by the coordinator.
#[derive(Debug)]
struct Slot {
    ctl: Mutex<CtlSlot>,
    /// Dedicated heartbeat connection: PING/PONG never interleaves with a
    /// RELAY/TAKE round-trip on the control socket.
    hb: Mutex<Option<TcpStream>>,
    /// Answered the most recent heartbeat.
    live: AtomicBool,
    /// Estimated offset of this worker's monotonic clock from the
    /// coordinator's epoch, in µs: `worker_us − coordinator_us` at the
    /// same wall instant, from the RTT-midpoint of the best (lowest-RTT)
    /// heartbeat. Subtracting it re-bases worker span timestamps onto the
    /// coordinator's clock.
    offset_us: AtomicI64,
    /// Lowest heartbeat RTT observed so far (µs); its midpoint sample is
    /// the tightest clock-offset bound. `u64::MAX` = no sample yet.
    min_rtt_us: AtomicU64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            ctl: Mutex::new(CtlSlot::default()),
            hb: Mutex::new(None),
            live: AtomicBool::new(false),
            offset_us: AtomicI64::new(0),
            min_rtt_us: AtomicU64::new(u64::MAX),
        }
    }
}

/// Cap on the supervisor event journal (drop-oldest; sequence numbers keep
/// ordering observable across eviction).
const JOURNAL_CAPACITY: usize = 1024;

#[derive(Debug)]
struct ProcInner {
    n: usize,
    cfg: ProcClusterConfig,
    slots: Vec<Slot>,
    /// Current listen ports (index = worker); refreshed on respawn.
    ports: Mutex<Vec<u16>>,
    /// Exchange id generator.
    next_xid: AtomicU64,
    /// Exchange ids currently in flight. The prune watermark sent with a
    /// relay is the *minimum* in-flight id, so concurrent queries sharing
    /// this backend never evict each other's buffered buckets.
    inflight: Mutex<std::collections::BTreeSet<u64>>,
    /// Lifetime counters (independent of any single query's [`CommStats`]).
    wire_tx_bytes: AtomicU64,
    wire_rx_bytes: AtomicU64,
    respawns: AtomicU64,
    reconnects: AtomicU64,
    liveness_misses: AtomicU64,
    /// Zero point of the coordinator's span clock (backend startup).
    epoch: Instant,
    /// Heartbeat round-trip latencies.
    rtt_hist: Histogram,
    /// Bounded drop-oldest supervisor event journal.
    journal: Mutex<VecDeque<SupervisorEvent>>,
    journal_seq: AtomicU64,
    /// Per-trace journal read cursors (`trace_id → last merged seq`), so
    /// each query's merge sees every supervisor event exactly once.
    journal_cursor: Mutex<Vec<(u64, u64)>>,
    /// Lifetime worker-side telemetry, accumulated from trace-flush
    /// deltas: per-opcode frame counts and span-ring evictions.
    worker_relays: AtomicU64,
    worker_delivers: AtomicU64,
    worker_takes: AtomicU64,
    worker_bcasts: AtomicU64,
    trace_dropped: AtomicU64,
    /// Startup handshake complete; connection (re)establishments from here
    /// on count as reconnects.
    started: AtomicBool,
    shutdown: AtomicBool,
}

/// Resolves the worker binary: explicit config, `MURA_WORKER_BIN`, then a
/// sibling of the current executable (tests run from `target/*/deps/`, so
/// one extra `deps` component is stripped).
fn worker_bin(cfg: &ProcClusterConfig) -> PathBuf {
    if let Some(p) = &cfg.worker_bin {
        return p.clone();
    }
    if let Ok(p) = std::env::var("MURA_WORKER_BIN") {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    let mut p = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("mura-worker"));
    p.pop();
    if p.file_name().is_some_and(|d| d == "deps") {
        p.pop();
    }
    p.push("mura-worker");
    p
}

/// Spawns one worker process and waits (bounded) for its `PORT <n>`
/// announcement. The child keeps its stdin pipe: dropping the `Child`
/// closes the write end and the worker exits on EOF.
fn spawn_worker(cfg: &ProcClusterConfig) -> std::result::Result<(Child, u16), WireError> {
    let bin = worker_bin(cfg);
    let mut child = Command::new(&bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| {
            WireError::Io(std::io::Error::other(format!("spawn {}: {e}", bin.display())))
        })?;
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
        let _ = tx.send(line);
        // Keep draining so later worker writes to stdout can never block.
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(k) if k > 0) {
            sink.clear();
        }
    });
    let line = rx.recv_timeout(Duration::from_secs(10)).map_err(|_| {
        child.kill().ok();
        child.wait().ok();
        WireError::Io(std::io::Error::other("worker did not announce a port"))
    })?;
    match line.trim().strip_prefix("PORT ").and_then(|p| p.parse::<u16>().ok()) {
        Some(port) => Ok((child, port)),
        None => {
            child.kill().ok();
            child.wait().ok();
            Err(WireError::Io(std::io::Error::other(format!("bad port announcement {line:?}"))))
        }
    }
}

/// Connects to a worker port with bounded exponential backoff.
fn connect(
    port: u16,
    timeout: Duration,
    attempts: u32,
) -> std::result::Result<TcpStream, WireError> {
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    let mut backoff = Duration::from_millis(10);
    let mut last: Option<std::io::Error> = None;
    for i in 0..attempts.max(1) {
        if i > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(200));
        }
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                s.set_read_timeout(Some(timeout)).ok();
                s.set_write_timeout(Some(timeout)).ok();
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.map(WireError::Io).unwrap_or(WireError::Malformed("no connection attempts")))
}

impl ProcInner {
    fn count_tx(&self, b: u64) {
        self.wire_tx_bytes.fetch_add(b, Ordering::Relaxed);
    }

    fn count_rx(&self, b: u64) {
        self.wire_rx_bytes.fetch_add(b, Ordering::Relaxed);
    }

    /// Appends a supervisor event to the bounded journal.
    fn journal_push(&self, worker: usize, kind: SupervisorEventKind) {
        let seq = self.journal_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let ev = SupervisorEvent { seq, at: Instant::now(), worker: worker as u32, kind };
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if journal.len() >= JOURNAL_CAPACITY {
            journal.pop_front();
        }
        journal.push_back(ev);
    }

    /// Folds one worker's trace-flush counter deltas into the lifetime
    /// totals (workers swap their counters to zero on every flush, so the
    /// deltas accumulate exactly once here).
    fn apply_batch_counters(
        &self,
        dropped: u64,
        relays: u64,
        delivers: u64,
        takes: u64,
        bcasts: u64,
    ) {
        self.trace_dropped.fetch_add(dropped, Ordering::Relaxed);
        self.worker_relays.fetch_add(relays, Ordering::Relaxed);
        self.worker_delivers.fetch_add(delivers, Ordering::Relaxed);
        self.worker_takes.fetch_add(takes, Ordering::Relaxed);
        self.worker_bcasts.fetch_add(bcasts, Ordering::Relaxed);
    }

    /// Sends one request on worker `w`'s control socket and reads the
    /// reply, (re)connecting — with a fresh [`Msg::Hello`] — as needed.
    /// Returns `(reply, tx_bytes, rx_bytes)` including any handshake
    /// traffic; lifetime byte totals are counted here, per-query payload
    /// accounting is the caller's job. Any failure drops the connection.
    fn send_ctl(&self, w: usize, msg: &Msg) -> std::result::Result<(Msg, u64, u64), WireError> {
        let mut guard = self.slots[w].ctl.lock().unwrap();
        let mut tx = 0u64;
        let mut rx = 0u64;
        if guard.conn.is_none() {
            let port = self.ports.lock().unwrap()[w];
            let mut conn = connect(port, self.cfg.io_timeout, self.cfg.connect_attempts)?;
            tx += write_frame(&mut conn, &Msg::Hello { id: w as u32, n: self.n as u32 })?;
            let (reply, k) = read_frame(&mut conn)?;
            rx += k;
            if reply != Msg::Ok {
                self.count_tx(tx);
                self.count_rx(rx);
                return Err(WireError::Malformed("hello rejected"));
            }
            if self.started.load(Ordering::Relaxed) {
                self.reconnects.fetch_add(1, Ordering::Relaxed);
                self.journal_push(w, SupervisorEventKind::Reconnect);
            }
            guard.conn = Some(conn);
        }
        let conn = guard.conn.as_mut().expect("just connected");
        let out = write_frame(conn, msg).and_then(|k| {
            tx += k;
            let (reply, k) = read_frame(conn)?;
            rx += k;
            Ok(reply)
        });
        self.count_tx(tx);
        self.count_rx(rx);
        match out {
            Ok(reply) => Ok((reply, tx, rx)),
            Err(e) => {
                guard.conn = None;
                Err(e)
            }
        }
    }

    /// Drops worker `w`'s control connection (next use reconnects).
    fn sever(&self, w: usize) {
        self.slots[w].ctl.lock().unwrap().conn = None;
    }

    /// Fault injection: ships a frame with seeded bit rot on worker `w`'s
    /// live control connection. The worker's frame reader surfaces
    /// [`WireError::BadChecksum`] and closes its end, so the next control
    /// round-trip on this slot fails exactly like a dropped connection and
    /// rides the standard repair ladder — the corrupted frame itself is
    /// never acted on. No-op when the slot is not connected.
    fn corrupt_control_frame(&self, w: usize, entropy: u64) {
        let mut guard = self.slots[w].ctl.lock().unwrap();
        if let Some(conn) = guard.conn.as_mut() {
            if let Ok(k) = write_corrupted_frame(conn, &Msg::Ping, entropy) {
                self.count_tx(k);
            }
        }
    }

    /// Real `SIGKILL` of worker `w`'s process (fault injection / tests).
    fn kill(&self, w: usize) {
        let mut guard = self.slots[w].ctl.lock().unwrap();
        if let Some(child) = &mut guard.child {
            child.kill().ok();
            child.wait().ok();
        }
        guard.conn = None;
        self.slots[w].live.store(false, Ordering::Relaxed);
    }

    /// Repairs worker `w`: drops its control connection when `sever` is
    /// set, and respawns the process if it is dead — then re-announces the
    /// refreshed peer table to every worker (one control lock at a time).
    /// `fault` (when given) receives the recovery accounting.
    fn repair(
        &self,
        w: usize,
        fault: Option<&FaultPlan>,
        sever: bool,
    ) -> std::result::Result<(), WireError> {
        let respawned = {
            let mut guard = self.slots[w].ctl.lock().unwrap();
            if sever {
                guard.conn = None;
            }
            let dead = match &mut guard.child {
                None => true,
                Some(c) => c.try_wait().map(|s| s.is_some()).unwrap_or(true),
            };
            if dead {
                if self.shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
                self.slots[w].live.store(false, Ordering::Relaxed);
                guard.child = None;
                guard.conn = None;
                let (child, port) = spawn_worker(&self.cfg)?;
                guard.child = Some(child);
                guard.port = port;
                self.ports.lock().unwrap()[w] = port;
                self.respawns.fetch_add(1, Ordering::Relaxed);
                self.journal_push(w, SupervisorEventKind::Respawn);
                // A fresh process is a fresh monotonic clock: invalidate the
                // offset estimate until a new heartbeat samples it.
                self.slots[w].offset_us.store(0, Ordering::Relaxed);
                self.slots[w].min_rtt_us.store(u64::MAX, Ordering::Relaxed);
                if let Some(f) = fault {
                    f.record_worker_respawn();
                }
                true
            } else {
                false
            }
        };
        if respawned {
            self.sync_peers();
            // Re-establish the clock offset right away instead of waiting a
            // supervisor period; spans recorded before the next heartbeat
            // would otherwise be merged with a stale (zero) offset.
            self.heartbeat(w);
        }
        Ok(())
    }

    /// Re-announces the current port map to every worker (one control lock
    /// at a time). Best-effort per worker: one being down does not stop
    /// the sync — its own repair re-syncs. Called after every respawn and
    /// after every failed exchange attempt, because a worker that missed a
    /// respawn announcement (e.g. it was itself down at the time) would
    /// otherwise keep delivering to the dead peer's old port forever.
    fn sync_peers(&self) {
        let ports = self.ports.lock().unwrap().clone();
        for v in 0..self.n {
            if let Ok((Msg::Ok, _, _)) = self.send_ctl(v, &Msg::Peers(ports.clone())) {
                self.slots[v].live.store(true, Ordering::Relaxed);
            }
        }
    }

    /// One PING/PONG on the dedicated heartbeat connection. The reply
    /// carries the worker's monotonic clock; the RTT midpoint gives a
    /// clock-offset sample (Cristian's algorithm), and the sample from the
    /// lowest RTT observed so far — the tightest bound — is kept as the
    /// worker's offset estimate for span merging.
    fn heartbeat(&self, w: usize) -> bool {
        let mut hb = self.slots[w].hb.lock().unwrap();
        if hb.is_none() {
            let port = self.ports.lock().unwrap()[w];
            match connect(port, self.cfg.liveness_timeout, 1) {
                Ok(conn) => {
                    if self.started.load(Ordering::Relaxed) {
                        self.reconnects.fetch_add(1, Ordering::Relaxed);
                        self.journal_push(w, SupervisorEventKind::Reconnect);
                    }
                    *hb = Some(conn);
                }
                Err(_) => return false,
            }
        }
        let conn = hb.as_mut().expect("just connected");
        let t0 = self.epoch.elapsed().as_micros() as u64;
        let pong = write_frame(conn, &Msg::Ping).map(|k| self.count_tx(k)).ok().and_then(|()| {
            read_frame(conn)
                .map(|(m, k)| {
                    self.count_rx(k);
                    m
                })
                .ok()
        });
        let ok = match pong {
            Some(Msg::Pong { t_us }) => {
                let t1 = self.epoch.elapsed().as_micros() as u64;
                let rtt = t1.saturating_sub(t0);
                self.rtt_hist.record_us(rtt);
                let slot = &self.slots[w];
                if rtt <= slot.min_rtt_us.load(Ordering::Relaxed) {
                    slot.min_rtt_us.store(rtt, Ordering::Relaxed);
                    // The worker read its clock ~halfway through the RTT.
                    let midpoint = t0 + rtt / 2;
                    slot.offset_us.store(t_us as i64 - midpoint as i64, Ordering::Relaxed);
                }
                true
            }
            _ => false,
        };
        if !ok {
            *hb = None;
        }
        ok
    }

    /// Supervisor loop: heartbeat every worker each period; a worker that
    /// misses its liveness deadline is marked down, journaled, and repaired
    /// (respawn if the process died; connections re-establish on next use).
    fn supervise(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::Relaxed) {
            for w in 0..self.n {
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if self.heartbeat(w) {
                    self.slots[w].live.store(true, Ordering::Relaxed);
                } else {
                    self.slots[w].live.store(false, Ordering::Relaxed);
                    self.liveness_misses.fetch_add(1, Ordering::Relaxed);
                    self.journal_push(w, SupervisorEventKind::LivenessMiss);
                    let _ = self.repair(w, None, false);
                }
            }
            std::thread::sleep(self.cfg.heartbeat);
        }
    }

    fn health(&self) -> ClusterHealth {
        let live = self.slots.iter().filter(|s| s.live.load(Ordering::Relaxed)).count() as u64;
        ClusterHealth {
            workers: self.n as u64,
            live,
            respawns: self.respawns.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            liveness_misses: self.liveness_misses.load(Ordering::Relaxed),
            wire_tx_bytes: self.wire_tx_bytes.load(Ordering::Relaxed),
            wire_rx_bytes: self.wire_rx_bytes.load(Ordering::Relaxed),
            trace_dropped: self.trace_dropped.load(Ordering::Relaxed),
            worker_relay_frames: self.worker_relays.load(Ordering::Relaxed),
            worker_deliver_frames: self.worker_delivers.load(Ordering::Relaxed),
            worker_take_frames: self.worker_takes.load(Ordering::Relaxed),
            worker_bcast_frames: self.worker_bcasts.load(Ordering::Relaxed),
        }
    }
}

/// A cluster of real worker OS processes behind the [`CommBackend`] seam.
/// See the module docs for the architecture.
#[derive(Debug)]
pub struct ProcCluster {
    inner: Arc<ProcInner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl ProcCluster {
    /// Spawns `workers` worker processes with default timings.
    pub fn spawn(workers: usize) -> Result<Arc<ProcCluster>> {
        Self::spawn_with(ProcClusterConfig { workers, ..Default::default() })
    }

    /// Spawns the cluster described by `cfg`: starts every worker, runs
    /// the HELLO/PEERS handshake, then starts the heartbeat supervisor.
    pub fn spawn_with(cfg: ProcClusterConfig) -> Result<Arc<ProcCluster>> {
        assert!(cfg.workers >= 1, "need at least one worker");
        let n = cfg.workers;
        let inner = Arc::new(ProcInner {
            n,
            cfg,
            slots: (0..n).map(|_| Slot::default()).collect(),
            ports: Mutex::new(vec![0; n]),
            next_xid: AtomicU64::new(1),
            inflight: Mutex::new(std::collections::BTreeSet::new()),
            wire_tx_bytes: AtomicU64::new(0),
            wire_rx_bytes: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            liveness_misses: AtomicU64::new(0),
            epoch: Instant::now(),
            rtt_hist: Histogram::new(),
            journal: Mutex::new(VecDeque::new()),
            journal_seq: AtomicU64::new(0),
            journal_cursor: Mutex::new(Vec::new()),
            worker_relays: AtomicU64::new(0),
            worker_delivers: AtomicU64::new(0),
            worker_takes: AtomicU64::new(0),
            worker_bcasts: AtomicU64::new(0),
            trace_dropped: AtomicU64::new(0),
            started: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let cluster = Arc::new(ProcCluster { inner, supervisor: Mutex::new(None) });
        for w in 0..n {
            let (child, port) = spawn_worker(&cluster.inner.cfg).map_err(|e| {
                cluster.shutdown();
                e.into_worker_failed(w)
            })?;
            let mut guard = cluster.inner.slots[w].ctl.lock().unwrap();
            guard.child = Some(child);
            guard.port = port;
            drop(guard);
            cluster.inner.ports.lock().unwrap()[w] = port;
        }
        let ports = cluster.inner.ports.lock().unwrap().clone();
        for w in 0..n {
            match cluster.inner.send_ctl(w, &Msg::Peers(ports.clone())) {
                Ok((Msg::Ok, _, _)) => cluster.inner.slots[w].live.store(true, Ordering::Relaxed),
                Ok(_) => {
                    cluster.shutdown();
                    return Err(WireError::Malformed("peers rejected").into_worker_failed(w));
                }
                Err(e) => {
                    cluster.shutdown();
                    return Err(e.into_worker_failed(w));
                }
            }
        }
        // Seed every worker's clock-offset estimate before the first query
        // (and before `started`, so these handshakes do not count as
        // reconnects); the supervisor keeps the estimates fresh after.
        for w in 0..n {
            cluster.inner.heartbeat(w);
        }
        cluster.inner.started.store(true, Ordering::Relaxed);
        let sup = {
            let inner = Arc::clone(&cluster.inner);
            std::thread::Builder::new()
                .name("mura-proc-supervisor".into())
                .spawn(move || inner.supervise())
                .expect("spawn supervisor thread")
        };
        *cluster.supervisor.lock().unwrap() = Some(sup);
        Ok(cluster)
    }

    /// Current supervisor view (also available as
    /// [`CommBackend::health`]).
    pub fn health_snapshot(&self) -> ClusterHealth {
        self.inner.health()
    }

    /// Snapshot of the heartbeat round-trip latency histogram.
    pub fn rtt_snapshot(&self) -> HistogramSnapshot {
        self.inner.rtt_hist.snapshot()
    }

    /// The supervisor event journal, oldest first (bounded; evicted
    /// entries leave a gap in the `seq` numbering).
    pub fn journal(&self) -> Vec<SupervisorEvent> {
        self.inner.journal.lock().unwrap_or_else(|e| e.into_inner()).iter().copied().collect()
    }

    /// Test hook: really `SIGKILL` worker `w`'s process. Returns whether a
    /// process was there to kill. The supervisor (or the next exchange)
    /// detects the death and respawns it.
    pub fn kill_worker_process(&self, w: usize) -> bool {
        let had = self.inner.slots[w].ctl.lock().unwrap().child.is_some();
        self.inner.kill(w);
        had
    }

    /// Test hook: sever worker `w`'s coordinator connections (control and
    /// heartbeat). The worker process stays up; connections re-establish
    /// on next use.
    pub fn sever_connection(&self, w: usize) {
        self.inner.sever(w);
        *self.inner.slots[w].hb.lock().unwrap() = None;
    }

    /// Best-effort CANCEL to every worker: clears their exchange inboxes
    /// so cancelled/drained queries do not leak buffered buckets.
    fn cancel_all(&self) {
        for w in 0..self.inner.n {
            let _ = self.inner.send_ctl(w, &Msg::Cancel);
        }
    }

    /// Stops the supervisor, asks workers to exit, and reaps them. Called
    /// by `Drop`; safe to call more than once.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.supervisor.lock().unwrap().take() {
            h.join().ok();
        }
        for slot in &self.inner.slots {
            let mut guard = slot.ctl.lock().unwrap();
            if let Some(conn) = guard.conn.as_mut() {
                // Best-effort residual drain so worker-side frame counters
                // recorded since the last per-fixpoint flush still land in
                // the lifetime totals.
                if write_frame(conn, &Msg::TraceFlush { trace_id: 0 }).is_ok() {
                    if let Ok((
                        Msg::TraceBatch { dropped, relays, delivers, takes, bcasts, .. },
                        _,
                    )) = read_frame(conn)
                    {
                        self.inner.apply_batch_counters(dropped, relays, delivers, takes, bcasts);
                    }
                }
                let _ = write_frame(conn, &Msg::Exit);
            }
            guard.conn = None;
            if let Some(mut child) = guard.child.take() {
                child.kill().ok();
                child.wait().ok();
            }
            slot.live.store(false, Ordering::Relaxed);
            *slot.hb.lock().unwrap() = None;
        }
    }

    /// One attempt of an exchange: relay every source's entries, apply the
    /// kill injection between the phases (buffered data is genuinely
    /// lost), then collect every destination's inbox. Errors name the
    /// worker so the caller can repair it.
    #[allow(clippy::type_complexity)]
    fn try_exchange(
        &self,
        ctx: &ExchangeCtx<'_>,
        schema: &Schema,
        entries: &[Vec<(u32, Vec<u8>)>],
        expect: &[u32],
        attempt: u32,
    ) -> std::result::Result<Vec<Relation>, (usize, WireError)> {
        let inner = &self.inner;
        let xid = inner.next_xid.fetch_add(1, Ordering::Relaxed);
        let watermark = {
            let mut inflight = inner.inflight.lock().unwrap();
            inflight.insert(xid);
            *inflight.iter().next().expect("just inserted")
        };
        // Deregister the xid however this attempt ends.
        struct Deregister<'a>(&'a ProcInner, u64);
        impl Drop for Deregister<'_> {
            fn drop(&mut self) {
                self.0.inflight.lock().unwrap().remove(&self.1);
            }
        }
        let _dereg = Deregister(inner, xid);
        for w in 0..inner.n {
            if let Some(d) = ctx.fault.delay_socket(ctx.site, w, attempt) {
                std::thread::sleep(d);
            }
            if ctx.fault.drop_connection(ctx.site, w, attempt) {
                inner.sever(w);
                // The next send on this slot re-establishes the connection.
                ctx.fault.record_reconnect();
            }
            if let Some(entropy) = ctx.fault.corrupt_frame(ctx.site, w, attempt) {
                inner.corrupt_control_frame(w, entropy);
            }
        }
        for (from, batch) in entries.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let payload: u64 = batch.iter().map(|(_, p)| p.len() as u64).sum();
            let msg = Msg::Relay { xid, watermark, ctx: ctx.trace, entries: batch.clone() };
            let (reply, tx, rx) = inner.send_ctl(from, &msg).map_err(|e| (from, e))?;
            ctx.metrics.record_wire_tx(tx, payload);
            ctx.metrics.record_wire_rx(rx, 0);
            match reply {
                Msg::Ok => {}
                Msg::Err(e) => {
                    return Err((from, WireError::Io(std::io::Error::other(e))));
                }
                _ => return Err((from, WireError::Malformed("unexpected relay reply"))),
            }
        }
        // Injection point: between relay and collect, so a killed worker
        // takes its buffered buckets down with it.
        for w in 0..inner.n {
            if ctx.fault.kill_worker(ctx.site, w, attempt) {
                inner.kill(w);
            }
        }
        let mut parts: Vec<Relation> =
            (0..inner.n).map(|_| Relation::new(schema.clone())).collect();
        let arity = schema.arity();
        for (to, &want) in expect.iter().enumerate() {
            if want == 0 {
                continue;
            }
            let msg = Msg::Take {
                xid,
                expect: want,
                timeout_ms: inner.cfg.take_timeout.as_millis() as u64,
                ctx: ctx.trace,
            };
            let (reply, tx, rx) = inner.send_ctl(to, &msg).map_err(|e| (to, e))?;
            ctx.metrics.record_wire_tx(tx, 0);
            match reply {
                Msg::TakeReply(got) => {
                    let payload: u64 = got.iter().map(|(_, p)| p.len() as u64).sum();
                    ctx.metrics.record_wire_rx(rx, payload);
                    if (got.len() as u32) < want {
                        return Err((
                            to,
                            WireError::Io(std::io::Error::other(format!(
                                "short exchange: {} of {want} buckets",
                                got.len()
                            ))),
                        ));
                    }
                    for (_, payload) in got {
                        let rows = decode_rows(&payload, arity).map_err(|e| (to, e))?;
                        for row in rows {
                            parts[to].insert(row);
                        }
                    }
                }
                _ => return Err((to, WireError::Malformed("unexpected take reply"))),
            }
        }
        Ok(parts)
    }
}

impl CommBackend for ProcCluster {
    fn name(&self) -> &'static str {
        "proc"
    }

    fn worker_count(&self) -> Option<usize> {
        Some(self.inner.n)
    }

    fn exchange(
        &self,
        ctx: &ExchangeCtx<'_>,
        schema: &Schema,
        buckets: Vec<Vec<Vec<Row>>>,
    ) -> Result<Vec<Relation>> {
        let n = self.inner.n;
        assert_eq!(ctx.workers, n, "exchange shape must match the process cluster");
        let arity = schema.arity();
        // Serialize every bucket once, and take the injection decisions
        // once, up front: retries of the same exchange must not re-roll
        // (or re-count) the same fault coordinates. An injected drop is a
        // first copy lost in transit — we ship the retransmission too, so
        // it costs real extra bytes; an injected duplicate ships twice.
        // Both extra copies are absorbed by the set merge.
        let mut entries: Vec<Vec<(u32, Vec<u8>)>> = vec![Vec::new(); n];
        let mut expect = vec![0u32; n];
        for (from, worker_buckets) in buckets.iter().enumerate() {
            for (to, bucket) in worker_buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let payload = encode_rows(arity, bucket);
                let mut copies = 1u32;
                if ctx.fault.is_active() {
                    if ctx.fault.drop_exchange(ctx.site, from, to) {
                        ctx.fault.record_time_lost(Duration::from_micros(bucket.len() as u64));
                        copies += 1;
                    }
                    if ctx.fault.duplicate_exchange(ctx.site, from, to) {
                        copies += 1;
                    }
                }
                for _ in 0..copies {
                    entries[from].push((to as u32, payload.clone()));
                    expect[to] += 1;
                }
            }
        }
        let max_attempts = ctx.recovery.max_retries + ctx.fault.config().failures_per_site + 2;
        let mut last: (usize, WireError) = (0, WireError::Malformed("exchange never attempted"));
        for attempt in 0..max_attempts {
            if let Some(c) = ctx.cancel {
                if let Err(e) = c.check() {
                    self.cancel_all();
                    return Err(e);
                }
            }
            match self.try_exchange(ctx, schema, &entries, &expect, attempt) {
                Ok(parts) => return Ok(parts),
                Err((w, e)) => {
                    if std::env::var("MURA_PROC_DEBUG").is_ok() {
                        eprintln!(
                            "exchange site={} attempt={attempt} failed at w{w}: {e}",
                            ctx.site
                        );
                    }
                    last = (w, e);
                    // Respawn whatever died, then re-announce the port map
                    // to everyone: the failure may be a live worker still
                    // delivering to a dead peer's old port (it missed the
                    // respawn announcement while it was itself down).
                    // Retry the whole exchange under a fresh xid.
                    for v in 0..n {
                        let sever = v == w;
                        let _ = self.inner.repair(v, Some(ctx.fault), sever);
                    }
                    self.inner.sync_peers();
                }
            }
        }
        // Retryable: escalates into the recovery ladder (stage rerun,
        // checkpoint restore, restart) exactly like a task failure.
        Err(last.1.into_worker_failed(last.0))
    }

    fn broadcast(&self, ctx: &ExchangeCtx<'_>, rel: &Relation) -> Result<()> {
        let payload = encode_relation(rel);
        // The broadcast allocates its own fault site: the simulator backend
        // never consumes one here, and site streams must stay aligned.
        let site = ctx.fault.next_site();
        let max_attempts = ctx.recovery.max_retries + ctx.fault.config().failures_per_site + 2;
        for w in 0..self.inner.n {
            let mut attempt = 0u32;
            loop {
                if let Some(c) = ctx.cancel {
                    c.check()?;
                }
                if let Some(d) = ctx.fault.delay_socket(site, w, attempt) {
                    std::thread::sleep(d);
                }
                if ctx.fault.drop_connection(site, w, attempt) {
                    self.inner.sever(w);
                    ctx.fault.record_reconnect();
                }
                if let Some(entropy) = ctx.fault.corrupt_frame(site, w, attempt) {
                    self.inner.corrupt_control_frame(w, entropy);
                }
                if ctx.fault.kill_worker(site, w, attempt) {
                    self.inner.kill(w);
                }
                let msg = Msg::Bcast { ctx: ctx.trace, payload: payload.clone() };
                let sent = match self.inner.send_ctl(w, &msg) {
                    Ok((Msg::Ok, tx, rx)) => {
                        ctx.metrics.record_wire_tx(tx, payload.len() as u64);
                        ctx.metrics.record_wire_rx(rx, 0);
                        Ok(())
                    }
                    Ok(_) => Err(WireError::Malformed("unexpected broadcast reply")),
                    Err(e) => Err(e),
                };
                match sent {
                    Ok(()) => break,
                    Err(e) => {
                        attempt += 1;
                        if attempt >= max_attempts {
                            return Err(e.into_worker_failed(w));
                        }
                        let _ = self.inner.repair(w, Some(ctx.fault), true);
                        self.inner.sync_peers();
                    }
                }
            }
        }
        Ok(())
    }

    fn health(&self) -> Option<ClusterHealth> {
        Some(self.inner.health())
    }

    /// Drains every worker's span ring and converts the spans into
    /// coordinator-clock [`TraceEvent`]s on that worker's lane. Clock
    /// alignment: a span at `t_us` on worker `w`'s clock maps to
    /// `t_us − offset(w)` µs after the coordinator's epoch, where
    /// `offset(w)` is the RTT-midpoint estimate kept by the heartbeat.
    /// Supervisor journal entries newer than this trace's cursor ride
    /// along (respawns/reconnects/liveness misses show up in the merged
    /// timeline exactly once per trace).
    fn flush_trace(&self, trace_id: u64, base: Instant) -> (Vec<TraceEvent>, u64) {
        let inner = &self.inner;
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for w in 0..inner.n {
            let Ok((reply, _, _)) = inner.send_ctl(w, &Msg::TraceFlush { trace_id }) else {
                continue;
            };
            let Msg::TraceBatch { spans, dropped: d, relays, delivers, takes, bcasts } = reply
            else {
                continue;
            };
            inner.apply_batch_counters(d, relays, delivers, takes, bcasts);
            dropped += d;
            let offset = inner.slots[w].offset_us.load(Ordering::Relaxed);
            for s in spans {
                if s.ctx.trace_id != trace_id {
                    continue;
                }
                let kind = match s.kind {
                    SPAN_RELAY => EventKind::ExchangeSend,
                    SPAN_DELIVER => EventKind::ExchangeRecv,
                    SPAN_TAKE => EventKind::ExchangeWait,
                    SPAN_BCAST => EventKind::BroadcastRecv,
                    _ => continue,
                };
                // Re-base onto the coordinator clock, then onto the trace
                // sink's start. Clamped, not dropped: a slightly-off
                // offset estimate must not lose events.
                let coord_us = (s.t_us as i64 - offset).max(0) as u64;
                let at = inner.epoch + Duration::from_micros(coord_us);
                let t_us = at.saturating_duration_since(base).as_micros() as u64;
                events.push(TraceEvent {
                    kind,
                    worker: w as i32,
                    iteration: s.ctx.superstep as u64,
                    wire_exchange_bytes: s.bytes,
                    t_us,
                    dur_us: s.dur_us,
                    ..TraceEvent::new(kind, s.ctx.fixpoint, mura_obs::PlanKind::None)
                });
            }
        }
        // Merge supervisor events this trace has not seen yet.
        let mut cursors = inner.journal_cursor.lock().unwrap_or_else(|e| e.into_inner());
        let last = cursors.iter().find(|(t, _)| *t == trace_id).map_or(0, |&(_, s)| s);
        let mut newest = last;
        {
            let journal = inner.journal.lock().unwrap_or_else(|e| e.into_inner());
            for ev in journal.iter().filter(|ev| ev.seq > last) {
                newest = newest.max(ev.seq);
                // Events from before the trace began belong to earlier
                // queries (or startup): advance past them silently.
                let Some(rel) = ev.at.checked_duration_since(base) else { continue };
                let kind = match ev.kind {
                    SupervisorEventKind::Respawn => EventKind::Respawn,
                    SupervisorEventKind::Reconnect => EventKind::Reconnect,
                    SupervisorEventKind::LivenessMiss => EventKind::LivenessMiss,
                };
                events.push(TraceEvent {
                    worker: ev.worker as i32,
                    t_us: rel.as_micros() as u64,
                    ..TraceEvent::new(kind, 0, mura_obs::PlanKind::None)
                });
            }
        }
        if let Some(c) = cursors.iter_mut().find(|(t, _)| *t == trace_id) {
            c.1 = newest;
        } else {
            if cursors.len() >= 16 {
                cursors.remove(0);
            }
            cursors.push((trace_id, newest));
        }
        (events, dropped)
    }
}

impl Drop for ProcCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_bin_resolves_to_sibling() {
        let cfg = ProcClusterConfig::default();
        let p = worker_bin(&cfg);
        assert_eq!(p.file_name().unwrap(), "mura-worker");
        // Unit tests run from target/*/deps/<test-bin>; the resolved path
        // must not point inside deps/.
        assert!(p.parent().is_some_and(|d| d.file_name().is_none_or(|f| f != "deps")));
    }

    #[test]
    fn explicit_worker_bin_wins() {
        let cfg = ProcClusterConfig {
            worker_bin: Some(PathBuf::from("/x/y/mura-worker")),
            ..Default::default()
        };
        assert_eq!(worker_bin(&cfg), PathBuf::from("/x/y/mura-worker"));
    }

    #[test]
    fn config_timings_are_ordered() {
        let cfg = ProcClusterConfig::default();
        assert!(cfg.take_timeout < cfg.io_timeout, "collect wait must fit inside socket timeout");
        assert!(cfg.heartbeat < cfg.liveness_timeout);
    }
}
