//! The Dist-μ-RA query engine: the full pipeline of the paper's Fig. 3.
//!
//! `UCRPQ → Query2Mu → MuRewriter + CostEstimator → PhysicalPlanGenerator →
//! distributed execution`, returning both the answer relation and the
//! execution/communication statistics.

use crate::exec::{DistEvaluator, ExecConfig, ExecStats};
use crate::metrics::CommSnapshot;
use mura_core::{Database, Relation, Result, Term};
use mura_rewrite::Rewriter;
use mura_ucrpq::{parse_ucrpq, to_mura};
use std::time::{Duration, Instant};

/// Result of a query execution.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The answer relation.
    pub relation: Relation,
    /// Wall-clock time of parsing + rewriting (zero when the plan came from
    /// a cache).
    pub planning: Duration,
    /// Wall-clock time of distributed execution.
    pub execution: Duration,
    /// Execution counters.
    pub stats: ExecStats,
    /// Communication during this query.
    pub comm: CommSnapshot,
    /// The optimized logical plan that was executed.
    pub plan: Term,
}

impl QueryOutput {
    /// Total wall-clock time (planning + execution).
    pub fn wall(&self) -> Duration {
        self.planning + self.execution
    }

    /// The per-query trace, present when the execution ran with
    /// [`ExecConfig::trace`](crate::ExecConfig) above `Off`.
    pub fn trace(&self) -> Option<&mura_obs::QueryTrace> {
        self.stats.trace.as_ref()
    }

    /// A short health note when the query hit faults but still completed:
    /// `Some("recovered ...")` when recovery machinery ran (task retries,
    /// checkpoint restores or restarts), `Some("degraded ...")` when faults
    /// were injected but absorbed without recovery (drops retransmitted,
    /// duplicates deduplicated, stragglers waited out), `None` for a clean
    /// run. Serving layers append this to their success responses instead
    /// of failing the query.
    pub fn health_note(&self) -> Option<String> {
        let f = &self.stats.fault;
        if f.recovered() {
            Some(format!(
                "recovered retries={} restores={} restarts={}",
                f.task_retries, f.checkpoint_restores, f.full_restarts
            ))
        } else if f.injected() > 0 {
            Some(format!(
                "degraded drops={} dups={} stragglers={}",
                f.injected_drops, f.injected_duplicates, f.injected_stragglers
            ))
        } else {
            None
        }
    }

    /// Renders a physical-plan explanation: the operator tree with every
    /// fixpoint annotated by its stable columns and the plan the
    /// `PhysicalPlanGenerator` policy selects for it (§IV-B c).
    pub fn explain(&self, db: &Database) -> String {
        explain_plan(&self.plan, db)
    }
}

/// Renders the physical-plan explanation of an arbitrary plan (the
/// operator tree with fixpoints annotated by stable columns and selected
/// physical plan). Used by the server's `.explain`, which plans without
/// executing.
pub fn explain_plan(plan: &Term, db: &Database) -> String {
    let mut out = String::new();
    let mut env = mura_core::analysis::TypeEnv::from_db(db);
    explain_rec(plan, db, &mut env, 0, &mut out);
    out
}

fn explain_rec(
    t: &Term,
    db: &Database,
    env: &mut mura_core::analysis::TypeEnv,
    depth: usize,
    out: &mut String,
) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    match t {
        Term::Var(v) => {
            let _ = writeln!(out, "{pad}scan {}", db.dict().resolve(*v));
        }
        Term::Cst(r) => {
            let _ = writeln!(out, "{pad}const [{} rows]", r.len());
        }
        Term::Filter(ps, inner) => {
            let _ = writeln!(out, "{pad}filter ({} predicates)", ps.len());
            explain_rec(inner, db, env, depth + 1, out);
        }
        Term::Rename(a, b, inner) => {
            let _ =
                writeln!(out, "{pad}rename {} -> {}", db.dict().resolve(*a), db.dict().resolve(*b));
            explain_rec(inner, db, env, depth + 1, out);
        }
        Term::AntiProject(cs, inner) => {
            let cols: Vec<&str> = cs.iter().map(|c| db.dict().resolve(*c)).collect();
            let _ = writeln!(out, "{pad}drop {}", cols.join(","));
            explain_rec(inner, db, env, depth + 1, out);
        }
        Term::Join(a, b) => {
            let _ = writeln!(out, "{pad}join");
            explain_rec(a, db, env, depth + 1, out);
            explain_rec(b, db, env, depth + 1, out);
        }
        Term::Antijoin(a, b) => {
            let _ = writeln!(out, "{pad}antijoin");
            explain_rec(a, db, env, depth + 1, out);
            explain_rec(b, db, env, depth + 1, out);
        }
        Term::Union(a, b) => {
            let _ = writeln!(out, "{pad}union");
            explain_rec(a, db, env, depth + 1, out);
            explain_rec(b, db, env, depth + 1, out);
        }
        Term::Fix(x, body) => {
            let note = match mura_core::analysis::stable_columns(*x, body, env) {
                Ok(stable) if !stable.is_empty() => {
                    let cols: Vec<&str> = stable.iter().map(|c| db.dict().resolve(*c)).collect();
                    format!("stable: {} -> P_plw", cols.join(","))
                }
                Ok(_) => "no stable column -> P_gld".to_string(),
                Err(e) => format!("analysis failed: {e}"),
            };
            let _ = writeln!(out, "{pad}fixpoint μ({}) [{note}]", db.dict().resolve(*x));
            // Bind the recursion variable's schema while explaining the body.
            let schema = mura_core::analysis::infer_schema(t, env).ok();
            let prev = schema.map(|s| (env.bind(*x, s.clone()), s));
            explain_rec(body, db, env, depth + 1, out);
            if let Some((prev, _)) = prev {
                env.unbind(*x, prev);
            }
        }
    }
}

/// The end-to-end Dist-μ-RA engine over one database.
pub struct QueryEngine {
    db: Database,
    config: ExecConfig,
    /// Skip the logical rewriter (for ablation experiments).
    optimize: bool,
}

impl QueryEngine {
    /// Engine with default configuration (4 workers, auto plan selection).
    pub fn new(db: Database) -> Self {
        QueryEngine { db, config: ExecConfig::default(), optimize: true }
    }

    /// Engine with an explicit configuration.
    pub fn with_config(db: Database, config: ExecConfig) -> Self {
        QueryEngine { db, config, optimize: true }
    }

    /// Disables the logical rewriter (naive plans; ablation baseline).
    pub fn without_rewrites(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// The database (e.g. to resolve result symbols).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (load more relations / constants).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Current execution configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Parses, optimizes and executes a UCRPQ.
    pub fn run_ucrpq(&mut self, query: &str) -> Result<QueryOutput> {
        let planned = self.plan_ucrpq(query)?;
        self.execute_plan(&planned)
    }

    /// Optimizes and executes a μ-RA term.
    pub fn run_term(&mut self, term: &Term) -> Result<QueryOutput> {
        let planned = self.plan_term(term)?;
        self.execute_plan(&planned)
    }

    /// Parses and optimizes a UCRPQ without executing it. Planning needs
    /// `&mut self` (translation interns symbols into the database); the
    /// returned plan can then be executed any number of times through
    /// [`QueryEngine::execute_plan`], which only needs `&self`.
    pub fn plan_ucrpq(&mut self, query: &str) -> Result<PlannedQuery> {
        let start = Instant::now();
        let q = parse_ucrpq(query)?;
        let term = to_mura(&q, &mut self.db)?;
        self.plan_term_from(&term, start)
    }

    /// Parses and optimizes a UCRPQ, returning the plan together with the
    /// plan-space enumeration report (`None` when the rewriter is
    /// disabled). `observed` supplies measured fixpoint cardinalities from
    /// the server's feedback store; when present, fixpoints found there are
    /// costed from measurement instead of static statistics.
    pub fn plan_ucrpq_report(
        &mut self,
        query: &str,
        observed: Option<&mura_rewrite::ObservedCards>,
    ) -> Result<(PlannedQuery, Option<mura_rewrite::EnumReport>)> {
        let start = Instant::now();
        let q = parse_ucrpq(query)?;
        let term = to_mura(&q, &mut self.db)?;
        if !self.optimize {
            return Ok((PlannedQuery { plan: term, planning: start.elapsed() }, None));
        }
        let mut rewriter = Rewriter::new(&mut self.db);
        if let Some(obs) = observed {
            rewriter = rewriter.with_observations(obs.clone());
        }
        let (plan, report) = rewriter.optimize_report(&term, &mut self.db)?;
        Ok((PlannedQuery { plan, planning: start.elapsed() }, Some(report)))
    }

    /// Optimizes a μ-RA term without executing it.
    pub fn plan_term(&mut self, term: &Term) -> Result<PlannedQuery> {
        self.plan_term_from(term, Instant::now())
    }

    fn plan_term_from(&mut self, term: &Term, start: Instant) -> Result<PlannedQuery> {
        let plan = if self.optimize {
            let rewriter = Rewriter::new(&mut self.db);
            rewriter.optimize(term, &mut self.db)?
        } else {
            term.clone()
        };
        Ok(PlannedQuery { plan, planning: start.elapsed() })
    }

    /// Executes an already-planned query under the engine's configuration.
    /// Read-only on the engine, so a serving layer can run many executions
    /// concurrently against one shared engine.
    pub fn execute_plan(&self, planned: &PlannedQuery) -> Result<QueryOutput> {
        self.execute_plan_with(planned, self.config.clone())
    }

    /// Executes a planned query under per-query configuration overrides
    /// (resource limits, cancellation token, plan policy).
    pub fn execute_plan_with(
        &self,
        planned: &PlannedQuery,
        config: ExecConfig,
    ) -> Result<QueryOutput> {
        let start = Instant::now();
        let mut ev = DistEvaluator::new(&self.db, config);
        let before = ev.cluster().metrics().snapshot();
        let relation = ev.eval_collect(&planned.plan)?;
        let comm = ev.cluster().metrics().snapshot().since(&before);
        Ok(QueryOutput {
            relation,
            planning: planned.planning,
            execution: start.elapsed(),
            stats: ev.stats().clone(),
            comm,
            plan: planned.plan.clone(),
        })
    }
}

/// An optimized logical plan ready for (repeated) execution.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The optimized μ-RA term.
    pub plan: Term,
    /// How long parsing + rewriting took.
    pub planning: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FixpointPlan;
    use mura_core::{eval, Value};
    use mura_datagen::SplitMix64;
    use mura_datagen::{erdos_renyi, with_random_labels};

    fn engine() -> QueryEngine {
        let mut rng = SplitMix64::seed_from_u64(3);
        let g = erdos_renyi(200, 0.012, 5);
        let lg = with_random_labels(&g, 2, &mut rng);
        let mut db = lg.to_database();
        db.bind_constant("C", Value::node(11));
        QueryEngine::new(db)
    }

    #[test]
    fn end_to_end_matches_centralized() {
        let mut e = engine();
        for q in [
            "?x, ?y <- ?x a1+ ?y",
            "?x <- ?x a1+ C",
            "?x <- C a1+ ?x",
            "?x, ?y <- ?x a1+/a2 ?y",
            "?x, ?y <- ?x a2/a1+ ?y",
            "?x, ?y <- ?x a1+/a2+ ?y",
        ] {
            let out = e.run_ucrpq(q).unwrap();
            // Reference: unoptimized centralized evaluation.
            let parsed = mura_ucrpq::parse_ucrpq(q).unwrap();
            let term = mura_ucrpq::to_mura(&parsed, e.db_mut()).unwrap();
            let expected = eval(&term, e.db()).unwrap();
            assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "query {q} diverged");
        }
    }

    #[test]
    fn without_rewrites_same_answers() {
        let mut opt = engine();
        let mut naive = engine().without_rewrites();
        let q = "?x <- ?x a1+ C";
        let a = opt.run_ucrpq(q).unwrap();
        let b = naive.run_ucrpq(q).unwrap();
        assert_eq!(a.relation.sorted_rows(), b.relation.sorted_rows());
    }

    #[test]
    fn plan_override_is_respected() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let g = erdos_renyi(100, 0.02, 5);
        let lg = with_random_labels(&g, 2, &mut rng);
        let db = lg.to_database();
        let config = ExecConfig { plan: FixpointPlan::ForceGld, ..Default::default() };
        let mut e = QueryEngine::with_config(db, config);
        let out = e.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        assert!(out.stats.gld_fixpoints >= 1);
        assert_eq!(out.stats.plw_fixpoints, 0);
    }

    #[test]
    fn explain_annotates_fixpoints() {
        let mut e = engine();
        let out = e.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        let plan = out.explain(e.db());
        assert!(plan.contains("fixpoint"), "{plan}");
        assert!(plan.contains("P_plw"), "stable closure must pick P_plw:\n{plan}");
        let out2 = e.run_ucrpq("?x, ?y <- ?x a1+/a2+ ?y").unwrap();
        let plan2 = out2.explain(e.db());
        assert!(plan2.contains("P_gld"), "merged fixpoint has no stable column:\n{plan2}");
    }

    #[test]
    fn output_reports_comm_and_plan() {
        let mut e = engine();
        let out = e.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        assert!(out.stats.fixpoint_iterations >= 1);
        assert!(out.plan.fixpoint_count() >= 1);
        // Some data always moves (broadcasts or shuffles).
        assert!(out.comm.rows_broadcast + out.comm.rows_shuffled > 0);
    }
}
