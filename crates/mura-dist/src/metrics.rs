//! Communication accounting.
//!
//! The paper's central claim is about *communication during recursion*:
//! `P_gld` shuffles every iteration, `P_plw` only repartitions once up
//! front. These counters make that observable: every shuffle, shuffled row
//! and broadcast row in the simulated cluster is counted here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe communication counters for one cluster.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Number of shuffle operations (each repartition of a dataset).
    pub shuffles: AtomicU64,
    /// Rows written during shuffles (every row of a repartitioned dataset,
    /// matching Spark's shuffle-write accounting).
    pub rows_shuffled: AtomicU64,
    /// Rows replicated by broadcasts (`rows × (workers − 1)`).
    pub rows_broadcast: AtomicU64,
    /// Number of broadcast operations.
    pub broadcasts: AtomicU64,
    /// Bytes written to worker sockets (frames included). Zero on the
    /// in-process simulator backend; real traffic on `ProcCluster`.
    pub wire_tx_bytes: AtomicU64,
    /// Bytes read back from worker sockets (frames included).
    pub wire_rx_bytes: AtomicU64,
    /// Data-plane payload bytes (exchange buckets and broadcast relations)
    /// that crossed a socket — the counter behind the paper's `P_plw`
    /// zero-communication claim, measured instead of simulated. Excludes
    /// framing and control traffic.
    pub wire_exchange_bytes: AtomicU64,
}

impl CommStats {
    /// Records one shuffle of `rows` rows.
    pub fn record_shuffle(&self, rows: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.rows_shuffled.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records one broadcast of `rows` rows to `workers` workers.
    pub fn record_broadcast(&self, rows: u64, workers: usize) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.rows_broadcast.fetch_add(rows * (workers.saturating_sub(1)) as u64, Ordering::Relaxed);
    }

    /// Records `frame` bytes written to a worker socket, `payload` of which
    /// were data-plane payload (zero for control traffic).
    pub fn record_wire_tx(&self, frame: u64, payload: u64) {
        self.wire_tx_bytes.fetch_add(frame, Ordering::Relaxed);
        self.wire_exchange_bytes.fetch_add(payload, Ordering::Relaxed);
    }

    /// Records `frame` bytes read from a worker socket, `payload` of which
    /// were data-plane payload.
    pub fn record_wire_rx(&self, frame: u64, payload: u64) {
        self.wire_rx_bytes.fetch_add(frame, Ordering::Relaxed);
        self.wire_exchange_bytes.fetch_add(payload, Ordering::Relaxed);
    }

    /// Immutable snapshot of the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            shuffles: self.shuffles.load(Ordering::Relaxed),
            rows_shuffled: self.rows_shuffled.load(Ordering::Relaxed),
            rows_broadcast: self.rows_broadcast.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            wire_tx_bytes: self.wire_tx_bytes.load(Ordering::Relaxed),
            wire_rx_bytes: self.wire_rx_bytes.load(Ordering::Relaxed),
            wire_exchange_bytes: self.wire_exchange_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`CommStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    pub shuffles: u64,
    pub rows_shuffled: u64,
    pub rows_broadcast: u64,
    pub broadcasts: u64,
    pub wire_tx_bytes: u64,
    pub wire_rx_bytes: u64,
    pub wire_exchange_bytes: u64,
}

impl CommSnapshot {
    /// Difference against an earlier snapshot. Saturates at zero so a
    /// stale or reordered earlier snapshot cannot underflow.
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            shuffles: self.shuffles.saturating_sub(earlier.shuffles),
            rows_shuffled: self.rows_shuffled.saturating_sub(earlier.rows_shuffled),
            rows_broadcast: self.rows_broadcast.saturating_sub(earlier.rows_broadcast),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            wire_tx_bytes: self.wire_tx_bytes.saturating_sub(earlier.wire_tx_bytes),
            wire_rx_bytes: self.wire_rx_bytes.saturating_sub(earlier.wire_rx_bytes),
            wire_exchange_bytes: self
                .wire_exchange_bytes
                .saturating_sub(earlier.wire_exchange_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let m = CommStats::default();
        m.record_shuffle(100);
        m.record_shuffle(50);
        m.record_broadcast(10, 4);
        let s = m.snapshot();
        assert_eq!(s.shuffles, 2);
        assert_eq!(s.rows_shuffled, 150);
        assert_eq!(s.rows_broadcast, 30);
        assert_eq!(s.broadcasts, 1);
    }

    #[test]
    fn since_subtracts() {
        let m = CommStats::default();
        m.record_shuffle(10);
        let a = m.snapshot();
        m.record_shuffle(5);
        let d = m.snapshot().since(&a);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.rows_shuffled, 5);
    }

    #[test]
    fn since_saturates_when_earlier_is_ahead() {
        // A snapshot diffed against a *later* one must not underflow.
        let m = CommStats::default();
        m.record_shuffle(10);
        let before = m.snapshot();
        m.record_shuffle(3);
        let after = m.snapshot();
        let d = before.since(&after);
        assert_eq!(d.shuffles, 0);
        assert_eq!(d.rows_shuffled, 0);
    }

    #[test]
    fn broadcast_to_single_worker_is_free() {
        let m = CommStats::default();
        m.record_broadcast(100, 1);
        assert_eq!(m.snapshot().rows_broadcast, 0);
    }

    #[test]
    fn wire_bytes_accumulate_and_diff() {
        let m = CommStats::default();
        m.record_wire_tx(100, 80);
        m.record_wire_rx(50, 40);
        let a = m.snapshot();
        assert_eq!(a.wire_tx_bytes, 100);
        assert_eq!(a.wire_rx_bytes, 50);
        assert_eq!(a.wire_exchange_bytes, 120);
        m.record_wire_tx(10, 0);
        let d = m.snapshot().since(&a);
        assert_eq!(d.wire_tx_bytes, 10);
        assert_eq!(d.wire_exchange_bytes, 0);
    }
}
