//! Length-delimited wire protocol for the multi-process cluster backend.
//!
//! Every frame on a coordinator↔worker or worker↔worker connection is
//! `[u32 len LE][u8 opcode][body][u32 crc LE]` where `len` counts the
//! opcode byte plus the body, and `crc` is the CRC-32 (IEEE) of exactly
//! those `len` bytes. Frames are capped at [`MAX_FRAME`]: a corrupt or
//! hostile length prefix yields a typed [`WireError::Oversized`] instead
//! of an unbounded allocation, a connection that ends mid-frame yields
//! [`WireError::Truncated`] instead of a partial read being interpreted
//! as data, and a body whose trailer does not match yields
//! [`WireError::BadChecksum`] — the receiver closes the connection, so
//! in-flight bit rot is handled by the same supervisor ladder as a
//! dropped connection and corrupted rows are never delivered.
//!
//! Exchange payloads (partition buckets, broadcast relations) are opaque
//! byte blobs to the workers — only the coordinator encodes and decodes
//! rows, with [`encode_rows`] / [`decode_rows`]. A worker's job is purely
//! to move the bytes: receive `Relay`, forward each bucket to its
//! destination peer as `Deliver`, and hand buffered buckets back to the
//! coordinator on `Take`. This keeps the three fixpoint drivers unchanged
//! (computation stays with the coordinator's task threads) while making
//! hash-exchange and broadcast traffic *real* socket bytes.

use mura_core::{MuraError, Relation, Row, Schema, Value};
use std::fmt;
use std::io::{Read, Write};

/// Hard cap on a single frame (64 MiB). Large relations are split across
/// per-destination buckets long before this; a frame claiming more is
/// corrupt or hostile.
pub const MAX_FRAME: usize = 64 << 20;

/// Typed failures of the frame layer.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection mid-frame (or before one started).
    Truncated,
    /// A frame header claimed more than [`MAX_FRAME`] bytes.
    Oversized { len: u64 },
    /// An unknown opcode byte.
    BadOpcode(u8),
    /// The CRC-32 trailer did not match the frame body: the bytes were
    /// damaged in flight. The frame is discarded undelivered.
    BadChecksum { expected: u32, got: u32 },
    /// A structurally invalid frame body.
    Malformed(&'static str),
    /// An underlying socket error.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds cap of {MAX_FRAME}")
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            WireError::BadChecksum { expected, got } => {
                write!(f, "frame checksum mismatch: expected {expected:#010x}, got {got:#010x}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl WireError {
    /// Maps a wire failure on worker `w`'s connection to the retryable
    /// [`MuraError::WorkerFailed`], so the exchange layer's repair loop and
    /// the existing recovery ladder (task retry → stage rerun → checkpoint
    /// restore → restart) handle it like any other worker death.
    pub fn into_worker_failed(self, worker: usize) -> MuraError {
        MuraError::WorkerFailed { worker, payload: format!("wire: {self}") }
    }
}

/// Result alias for the frame layer.
pub type WireResult<T> = std::result::Result<T, WireError>;

// Opcodes. Coordinator → worker requests, worker replies, and the
// worker → worker `Deliver` one-way frame.
const OP_HELLO: u8 = 1;
const OP_PEERS: u8 = 2;
const OP_PING: u8 = 3;
const OP_PONG: u8 = 4;
const OP_RELAY: u8 = 5;
const OP_TAKE: u8 = 6;
const OP_TAKE_REPLY: u8 = 7;
const OP_BCAST: u8 = 8;
const OP_CANCEL: u8 = 9;
const OP_EXIT: u8 = 10;
const OP_OK: u8 = 11;
const OP_ERR: u8 = 12;
const OP_DELIVER: u8 = 13;
const OP_TRACE_FLUSH: u8 = 14;
const OP_TRACE: u8 = 15;

/// Trace context propagated on every data-plane frame (Dapper-style): the
/// coordinator stamps RELAY/TAKE/BCAST requests, and workers copy the
/// context onto the DELIVER frames they forward, so a bucket arriving at a
/// peer still knows which query/fixpoint/superstep produced it. All-zero
/// when tracing is off (`level == 0`); workers record spans only at
/// `level >= 2` (superstep granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Process-unique id of the coordinator's trace sink.
    pub trace_id: u64,
    /// Serving-layer job id (0 outside the server).
    pub query_id: u64,
    /// Which fixpoint of the query is communicating.
    pub fixpoint: u32,
    /// Superstep number (0 = setup / outside the recursion loop).
    pub superstep: u32,
    /// Numeric `TraceLevel` (0 = off, 1 = fixpoint, 2 = superstep).
    pub level: u8,
}

/// Encoded size of a [`TraceCtx`] in bytes.
const TRACE_CTX_BYTES: usize = 25;

impl TraceCtx {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.query_id.to_le_bytes());
        out.extend_from_slice(&self.fixpoint.to_le_bytes());
        out.extend_from_slice(&self.superstep.to_le_bytes());
        out.push(self.level);
    }

    fn get(c: &mut Cursor<'_>) -> WireResult<TraceCtx> {
        Ok(TraceCtx {
            trace_id: c.u64()?,
            query_id: c.u64()?,
            fixpoint: c.u32()?,
            superstep: c.u32()?,
            level: c.u8()?,
        })
    }
}

/// Span kinds recorded worker-side (the `kind` byte of a [`WorkerSpan`]).
pub const SPAN_RELAY: u8 = 1;
/// A bucket received from a peer (`Deliver`).
pub const SPAN_DELIVER: u8 = 2;
/// A `Take` served, duration = time spent waiting for stragglers.
pub const SPAN_TAKE: u8 = 3;
/// A broadcast replica received.
pub const SPAN_BCAST: u8 = 4;

/// One worker-side span, timestamped on the **worker's** monotonic clock
/// (µs since its process start). The coordinator's merger re-bases these
/// onto its own clock using the PING/PONG RTT-midpoint offset estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSpan {
    /// One of [`SPAN_RELAY`], [`SPAN_DELIVER`], [`SPAN_TAKE`],
    /// [`SPAN_BCAST`].
    pub kind: u8,
    /// Trace context propagated on the frame that caused this span.
    pub ctx: TraceCtx,
    /// Exchange id (0 for broadcasts).
    pub xid: u64,
    /// Data-plane payload bytes handled by this span.
    pub bytes: u64,
    /// Start, in µs on the worker's clock.
    pub t_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// Encoded size of a [`WorkerSpan`] in bytes.
const SPAN_BYTES: usize = 1 + TRACE_CTX_BYTES + 32;

impl WorkerSpan {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        self.ctx.put(out);
        out.extend_from_slice(&self.xid.to_le_bytes());
        out.extend_from_slice(&self.bytes.to_le_bytes());
        out.extend_from_slice(&self.t_us.to_le_bytes());
        out.extend_from_slice(&self.dur_us.to_le_bytes());
    }

    fn get(c: &mut Cursor<'_>) -> WireResult<WorkerSpan> {
        Ok(WorkerSpan {
            kind: c.u8()?,
            ctx: TraceCtx::get(c)?,
            xid: c.u64()?,
            bytes: c.u64()?,
            t_us: c.u64()?,
            dur_us: c.u64()?,
        })
    }
}

/// One protocol message (a decoded frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Coordinator introduces worker `id` of `n` on a fresh connection.
    Hello { id: u32, n: u32 },
    /// The (re-broadcast after every respawn) table of peer listen ports.
    Peers(Vec<u16>),
    /// Heartbeat request (supervisor liveness probe).
    Ping,
    /// Heartbeat reply, carrying the worker's monotonic clock (µs since
    /// its process start) for RTT-midpoint clock alignment.
    Pong { t_us: u64 },
    /// Exchange `xid`: forward each `(to, payload)` bucket to its peer.
    /// `watermark` is the lowest still-active exchange id; buffered buckets
    /// of older exchanges are pruned (they belong to abandoned attempts).
    Relay { xid: u64, watermark: u64, ctx: TraceCtx, entries: Vec<(u32, Vec<u8>)> },
    /// Collect `expect` buckets buffered for exchange `xid`, waiting up to
    /// `timeout_ms` for stragglers.
    Take { xid: u64, expect: u32, timeout_ms: u64, ctx: TraceCtx },
    /// Reply to [`Msg::Take`]: the `(from, payload)` buckets received.
    TakeReply(Vec<(u32, Vec<u8>)>),
    /// A broadcast relation payload replicated to this worker.
    Bcast { ctx: TraceCtx, payload: Vec<u8> },
    /// Coordinator-side cancel/drain: discard all buffered exchange state.
    Cancel,
    /// Orderly shutdown request; the worker process exits.
    Exit,
    /// Generic success reply.
    Ok,
    /// Generic failure reply (e.g. a peer connection could not be made).
    Err(String),
    /// Worker → worker: bucket `payload` of exchange `xid` sent by `from`,
    /// carrying the trace context of the originating relay.
    Deliver { xid: u64, from: u32, ctx: TraceCtx, payload: Vec<u8> },
    /// Coordinator → worker: hand over buffered spans of `trace_id`
    /// (0 = everything), plus the per-opcode frame-counter deltas.
    TraceFlush { trace_id: u64 },
    /// Reply to [`Msg::TraceFlush`]: drained spans, the number of spans
    /// evicted from the worker's bounded ring since the last flush, and
    /// per-opcode frame counters (relay/deliver/take/bcast) since the last
    /// flush.
    TraceBatch {
        spans: Vec<WorkerSpan>,
        dropped: u64,
        relays: u64,
        delivers: u64,
        takes: u64,
        bcasts: u64,
    },
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

impl Msg {
    /// Encodes the frame body (opcode byte included, length prefix not).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Msg::Hello { id, n } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
            }
            Msg::Peers(ports) => {
                out.push(OP_PEERS);
                out.extend_from_slice(&(ports.len() as u32).to_le_bytes());
                for p in ports {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            Msg::Ping => out.push(OP_PING),
            Msg::Pong { t_us } => {
                out.push(OP_PONG);
                out.extend_from_slice(&t_us.to_le_bytes());
            }
            Msg::Relay { xid, watermark, ctx, entries } => {
                out.push(OP_RELAY);
                out.extend_from_slice(&xid.to_le_bytes());
                out.extend_from_slice(&watermark.to_le_bytes());
                ctx.put(&mut out);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (to, payload) in entries {
                    out.extend_from_slice(&to.to_le_bytes());
                    put_bytes(&mut out, payload);
                }
            }
            Msg::Take { xid, expect, timeout_ms, ctx } => {
                out.push(OP_TAKE);
                out.extend_from_slice(&xid.to_le_bytes());
                out.extend_from_slice(&expect.to_le_bytes());
                out.extend_from_slice(&timeout_ms.to_le_bytes());
                ctx.put(&mut out);
            }
            Msg::TakeReply(entries) => {
                out.push(OP_TAKE_REPLY);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (from, payload) in entries {
                    out.extend_from_slice(&from.to_le_bytes());
                    put_bytes(&mut out, payload);
                }
            }
            Msg::Bcast { ctx, payload } => {
                out.push(OP_BCAST);
                ctx.put(&mut out);
                put_bytes(&mut out, payload);
            }
            Msg::Cancel => out.push(OP_CANCEL),
            Msg::Exit => out.push(OP_EXIT),
            Msg::Ok => out.push(OP_OK),
            Msg::Err(msg) => {
                out.push(OP_ERR);
                put_bytes(&mut out, msg.as_bytes());
            }
            Msg::Deliver { xid, from, ctx, payload } => {
                out.push(OP_DELIVER);
                out.extend_from_slice(&xid.to_le_bytes());
                out.extend_from_slice(&from.to_le_bytes());
                ctx.put(&mut out);
                put_bytes(&mut out, payload);
            }
            Msg::TraceFlush { trace_id } => {
                out.push(OP_TRACE_FLUSH);
                out.extend_from_slice(&trace_id.to_le_bytes());
            }
            Msg::TraceBatch { spans, dropped, relays, delivers, takes, bcasts } => {
                out.push(OP_TRACE);
                out.extend_from_slice(&dropped.to_le_bytes());
                out.extend_from_slice(&relays.to_le_bytes());
                out.extend_from_slice(&delivers.to_le_bytes());
                out.extend_from_slice(&takes.to_le_bytes());
                out.extend_from_slice(&bcasts.to_le_bytes());
                out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
                for s in spans {
                    s.put(&mut out);
                }
            }
        }
        out
    }

    /// Decodes a frame body produced by [`Msg::encode`].
    pub fn decode(buf: &[u8]) -> WireResult<Msg> {
        let mut c = Cursor { buf, pos: 0 };
        let op = c.u8()?;
        let msg = match op {
            OP_HELLO => Msg::Hello { id: c.u32()?, n: c.u32()? },
            OP_PEERS => {
                let n = c.u32()? as usize;
                if n > buf.len() {
                    return Err(WireError::Malformed("peers count exceeds frame"));
                }
                let mut ports = Vec::with_capacity(n);
                for _ in 0..n {
                    ports.push(c.u16()?);
                }
                Msg::Peers(ports)
            }
            OP_PING => Msg::Ping,
            OP_PONG => Msg::Pong { t_us: c.u64()? },
            OP_RELAY => {
                let xid = c.u64()?;
                let watermark = c.u64()?;
                let ctx = TraceCtx::get(&mut c)?;
                let n = c.u32()? as usize;
                if n > buf.len() {
                    return Err(WireError::Malformed("relay count exceeds frame"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let to = c.u32()?;
                    entries.push((to, c.bytes()?));
                }
                Msg::Relay { xid, watermark, ctx, entries }
            }
            OP_TAKE => Msg::Take {
                xid: c.u64()?,
                expect: c.u32()?,
                timeout_ms: c.u64()?,
                ctx: TraceCtx::get(&mut c)?,
            },
            OP_TAKE_REPLY => {
                let n = c.u32()? as usize;
                if n > buf.len() {
                    return Err(WireError::Malformed("take-reply count exceeds frame"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let from = c.u32()?;
                    entries.push((from, c.bytes()?));
                }
                Msg::TakeReply(entries)
            }
            OP_BCAST => Msg::Bcast { ctx: TraceCtx::get(&mut c)?, payload: c.bytes()? },
            OP_CANCEL => Msg::Cancel,
            OP_EXIT => Msg::Exit,
            OP_OK => Msg::Ok,
            OP_ERR => {
                let raw = c.bytes()?;
                let msg = String::from_utf8(raw)
                    .map_err(|_| WireError::Malformed("err message is not utf-8"))?;
                Msg::Err(msg)
            }
            OP_DELIVER => Msg::Deliver {
                xid: c.u64()?,
                from: c.u32()?,
                ctx: TraceCtx::get(&mut c)?,
                payload: c.bytes()?,
            },
            OP_TRACE_FLUSH => Msg::TraceFlush { trace_id: c.u64()? },
            OP_TRACE => {
                let dropped = c.u64()?;
                let relays = c.u64()?;
                let delivers = c.u64()?;
                let takes = c.u64()?;
                let bcasts = c.u64()?;
                let n = c.u32()? as usize;
                // Each span costs a fixed SPAN_BYTES; reject counts the
                // frame cannot hold before allocating for them.
                if n.saturating_mul(SPAN_BYTES) > buf.len() {
                    return Err(WireError::Malformed("span count exceeds frame"));
                }
                let mut spans = Vec::with_capacity(n);
                for _ in 0..n {
                    spans.push(WorkerSpan::get(&mut c)?);
                }
                Msg::TraceBatch { spans, dropped, relays, delivers, takes, bcasts }
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        Ok(msg)
    }
}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> WireResult<&[u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed("field extends past frame end"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> WireResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

/// Writes one frame: length prefix, the encoded message, then the CRC-32
/// trailer over the encoded bytes. Returns the total bytes put on the wire
/// (prefix and trailer included) for traffic accounting.
pub fn write_frame(w: &mut impl Write, msg: &Msg) -> WireResult<u64> {
    let body = msg.encode();
    debug_assert!(body.len() <= MAX_FRAME);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.write_all(&mura_core::crc32(&body).to_le_bytes())?;
    w.flush()?;
    Ok(8 + body.len() as u64)
}

/// Fault injection only: writes `msg` as a frame whose body has one byte
/// flipped *after* the CRC trailer was computed, modeling in-flight bit
/// rot. `entropy` seeds which byte and which bit. The receiver must
/// surface [`WireError::BadChecksum`] and drop the connection rather than
/// act on the damaged frame.
pub fn write_corrupted_frame(w: &mut impl Write, msg: &Msg, entropy: u64) -> WireResult<u64> {
    let mut body = msg.encode();
    let crc = mura_core::crc32(&body);
    let idx = (entropy as usize) % body.len();
    let bit = ((entropy >> 32) % 8) as u8;
    body[idx] ^= 1 << bit;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.write_all(&crc.to_le_bytes())?;
    w.flush()?;
    Ok(8 + body.len() as u64)
}

/// Reads one frame, enforcing [`MAX_FRAME`] and the CRC-32 trailer.
/// Returns the decoded message and the total bytes read (prefix and
/// trailer included).
pub fn read_frame(r: &mut impl Read) -> WireResult<(Msg, u64)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len: len as u64 });
    }
    if len == 0 {
        return Err(WireError::Malformed("empty frame"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    let expected = u32::from_le_bytes(crc_buf);
    let got = mura_core::crc32(&body);
    if got != expected {
        return Err(WireError::BadChecksum { expected, got });
    }
    let msg = Msg::decode(&body)?;
    Ok((msg, 8 + len as u64))
}

// ------------------------------------------------------------- row codec

const VAL_INT: u8 = 0;
const VAL_SYM: u8 = 1;

/// Encodes a bucket of rows: `[u32 arity][u64 nrows][tagged values…]`.
/// Values are `[0][i64 LE]` for integers and `[1][u32 LE]` for interned
/// symbols — the full [`Value`] domain.
pub fn encode_rows(arity: usize, rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + rows.len() * arity * 9);
    out.extend_from_slice(&(arity as u32).to_le_bytes());
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for row in rows {
        debug_assert_eq!(row.len(), arity);
        for v in row.iter() {
            match v {
                Value::Int(i) => {
                    out.push(VAL_INT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Value::Str(s) => {
                    out.push(VAL_SYM);
                    out.extend_from_slice(&s.0.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Decodes a bucket encoded by [`encode_rows`], checking the arity against
/// `expected_arity`.
pub fn decode_rows(buf: &[u8], expected_arity: usize) -> WireResult<Vec<Row>> {
    let mut c = Cursor { buf, pos: 0 };
    let arity = c.u32()? as usize;
    if arity != expected_arity {
        return Err(WireError::Malformed("bucket arity does not match schema"));
    }
    let nrows = c.u64()? as usize;
    // Each value costs at least 5 bytes; reject row counts the frame
    // cannot possibly hold before allocating for them.
    if arity > 0 && nrows.saturating_mul(arity).saturating_mul(5) > buf.len() {
        return Err(WireError::Malformed("row count exceeds frame"));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            let v = match c.u8()? {
                VAL_INT => Value::Int(c.i64()?),
                VAL_SYM => Value::Str(mura_core::Sym(c.u32()?)),
                _ => return Err(WireError::Malformed("unknown value tag")),
            };
            row.push(v);
        }
        rows.push(row.into_boxed_slice());
    }
    Ok(rows)
}

/// Encodes a whole relation (broadcast payloads).
pub fn encode_relation(rel: &Relation) -> Vec<u8> {
    let rows: Vec<Row> = rel.iter().cloned().collect();
    encode_rows(rel.schema().arity(), &rows)
}

/// Decodes a relation payload against `schema`.
pub fn decode_relation(buf: &[u8], schema: &Schema) -> WireResult<Relation> {
    let rows = decode_rows(buf, schema.arity())?;
    Ok(Relation::from_rows(schema.clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Sym;

    fn round_trip(msg: Msg) {
        let body = msg.encode();
        assert_eq!(Msg::decode(&body).unwrap(), msg);
        // And through a stream.
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        let (back, n) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, msg);
        assert_eq!(n as usize, wire.len());
    }

    fn test_ctx() -> TraceCtx {
        TraceCtx { trace_id: 0xDEAD_BEEF, query_id: 42, fixpoint: 3, superstep: 7, level: 2 }
    }

    #[test]
    fn messages_round_trip() {
        round_trip(Msg::Hello { id: 2, n: 4 });
        round_trip(Msg::Peers(vec![4000, 4001, 65535]));
        round_trip(Msg::Ping);
        round_trip(Msg::Pong { t_us: 123_456_789 });
        round_trip(Msg::Relay {
            xid: 9,
            watermark: 7,
            ctx: test_ctx(),
            entries: vec![(0, vec![1, 2, 3]), (3, vec![])],
        });
        round_trip(Msg::Take { xid: 9, expect: 3, timeout_ms: 2000, ctx: test_ctx() });
        round_trip(Msg::TakeReply(vec![(1, vec![0xFF; 32])]));
        round_trip(Msg::Bcast { ctx: TraceCtx::default(), payload: vec![5; 100] });
        round_trip(Msg::Cancel);
        round_trip(Msg::Exit);
        round_trip(Msg::Ok);
        round_trip(Msg::Err("no route to peer".into()));
        round_trip(Msg::Deliver { xid: 1, from: 2, ctx: test_ctx(), payload: vec![9, 9] });
        round_trip(Msg::TraceFlush { trace_id: 0xDEAD_BEEF });
        round_trip(Msg::TraceBatch {
            spans: vec![
                WorkerSpan {
                    kind: SPAN_RELAY,
                    ctx: test_ctx(),
                    xid: 11,
                    bytes: 4096,
                    t_us: 1_000_000,
                    dur_us: 250,
                },
                WorkerSpan::default(),
            ],
            dropped: 5,
            relays: 2,
            delivers: 8,
            takes: 2,
            bcasts: 1,
        });
    }

    #[test]
    fn span_count_lie_is_rejected() {
        // A TRACE body claiming 2^30 spans in a tiny frame must not allocate.
        let mut buf = vec![OP_TRACE];
        for _ in 0..5 {
            buf.extend_from_slice(&0u64.to_le_bytes());
        }
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(Msg::decode(&buf), Err(WireError::Malformed(_))));
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        // A header claiming 4 GiB must fail fast with a typed error.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        match read_frame(&mut wire.as_slice()) {
            Err(WireError::Oversized { len }) => assert_eq!(len, u32::MAX as u64),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_typed() {
        let body = Msg::Hello { id: 0, n: 2 }.encode();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32 + 10).to_le_bytes());
        wire.extend_from_slice(&body); // 10 bytes short of the claim
        assert!(matches!(read_frame(&mut wire.as_slice()), Err(WireError::Truncated)));
        // Cut mid-header too.
        let short = vec![3u8, 0];
        assert!(matches!(read_frame(&mut short.as_slice()), Err(WireError::Truncated)));
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let msg = Msg::Relay {
            xid: 4,
            watermark: 1,
            ctx: test_ctx(),
            entries: vec![(1, vec![0xAB; 64])],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        // Flip one payload bit (past the length prefix, before the CRC).
        for idx in [4usize, 20, wire.len() - 6] {
            let mut damaged = wire.clone();
            damaged[idx] ^= 0x10;
            match read_frame(&mut damaged.as_slice()) {
                Err(WireError::BadChecksum { expected, got }) => assert_ne!(expected, got),
                other => panic!("flip at {idx}: expected BadChecksum, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_frame_helper_is_detected() {
        let msg = Msg::Bcast { ctx: test_ctx(), payload: vec![7; 128] };
        for entropy in [0u64, 1, 0xDEAD_BEEF_0000_0005, u64::MAX] {
            let mut wire = Vec::new();
            let n = write_corrupted_frame(&mut wire, &msg, entropy).unwrap();
            assert_eq!(n as usize, wire.len());
            assert!(
                matches!(read_frame(&mut wire.as_slice()), Err(WireError::BadChecksum { .. })),
                "entropy {entropy:#x} must yield a checksum mismatch"
            );
        }
    }

    #[test]
    fn garbage_bytes_never_panic() {
        // Deterministic pseudo-random garbage: every prefix must produce a
        // typed error (or a valid small message), never a panic or a huge
        // allocation.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut garbage = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            garbage.push((state >> 33) as u8);
        }
        for start in 0..64 {
            let mut slice = &garbage[start..];
            // Read frames until the garbage runs out or errors — both fine.
            for _ in 0..8 {
                match read_frame(&mut slice) {
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        }
        // Decoding raw garbage as a body is equally safe.
        for start in 0..64 {
            let _ = Msg::decode(&garbage[start..]);
            let _ = decode_rows(&garbage[start..], 2);
        }
    }

    #[test]
    fn rows_round_trip() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(-5), Value::Str(Sym(7))].into_boxed_slice(),
            vec![Value::Int(i64::MAX), Value::Int(0)].into_boxed_slice(),
        ];
        let buf = encode_rows(2, &rows);
        assert_eq!(decode_rows(&buf, 2).unwrap(), rows);
        assert!(matches!(decode_rows(&buf, 3), Err(WireError::Malformed(_))));
    }

    #[test]
    fn relation_round_trip() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let rel = Relation::from_pairs(src, dst, [(1, 2), (3, 4), (5, 6)]);
        let buf = encode_relation(&rel);
        let back = decode_relation(&buf, rel.schema()).unwrap();
        assert_eq!(back.sorted_rows(), rel.sorted_rows());
    }

    #[test]
    fn row_count_lie_is_rejected() {
        // A bucket claiming 2^40 rows in a tiny frame must not allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        buf.extend_from_slice(&[0; 32]);
        assert!(matches!(decode_rows(&buf, 2), Err(WireError::Malformed(_))));
    }
}
