//! Asynchronous distributed fixpoint evaluation (`P_async`).
//!
//! The paper notes (§VI) that Myria offers both a synchronous and an
//! *asynchronous* evaluation mode for recursive Datalog. This module
//! implements that third strategy on our substrate, complementing `P_gld`
//! (synchronized iterations) and `P_plw` (no communication at all):
//!
//! * every tuple of the recursive relation is **owned** by the worker its
//!   full-row hash maps to;
//! * workers run independent loops: receive a batch of candidate tuples,
//!   keep the genuinely new ones, apply the recursive step to that delta,
//!   and route the produced tuples to their owners — **no barriers**;
//! * termination uses an in-flight message counter: a batch is counted
//!   before it is sent and un-counted only after the receiver has both
//!   deduplicated it and sent all derived batches, so the counter reads
//!   zero exactly when the system is quiescent.
//!
//! Soundness does not depend on delivery order: the computed set grows
//! monotonically toward the same least fixpoint (Proposition 1), and
//! per-owner deduplication gives semi-naive behaviour.

use crate::cluster::Cluster;
use crate::distrel::DistRel;
use crate::localfix::{eval_branch, prepare, Budget, Prepared};
use mura_core::fxhash::FxHasher;
use mura_core::{Relation, Result, Row, Sym, Term};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

fn row_owner(row: &Row, n: usize) -> usize {
    let mut h = FxHasher::default();
    row.hash(&mut h);
    (h.finish() as usize) % n
}

/// Evaluates `μ(x = seed ∪ recs)` asynchronously. `recs` must be hoisted
/// (every `x`-free subterm already a constant, as for `P_plw`).
pub fn eval_async(
    seed: &DistRel,
    recs: &[Term],
    x: Sym,
    cluster: &Cluster,
    budget: &Budget,
) -> Result<DistRel> {
    let n = cluster.workers();
    let schema = seed.schema().clone();
    // Prepare once (constant folding + index builds) and share the branches
    // across all workers — the indexes are built per fixpoint, not per
    // worker or per batch.
    let prepared: Vec<Prepared<Relation>> =
        recs.iter().map(|r| prepare(r, x, &schema)).collect::<Result<_>>()?;
    let prepared = &prepared;
    // Channels: one inbox per worker.
    let mut senders: Vec<Sender<Vec<Row>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Vec<Row>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    // In-flight batches. Sends increment; a receiver decrements only after
    // processing a batch *and* sending everything derived from it.
    let in_flight = AtomicI64::new(0);
    let cross_rows = AtomicI64::new(0);
    // A failing worker (budget/timeout) must not leave the others spinning
    // on a counter that will never reach zero.
    let abort = std::sync::atomic::AtomicBool::new(false);

    // Seed every worker with the rows it owns.
    let mut initial: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
    for part in seed.parts() {
        for row in part.iter() {
            initial[row_owner(row, n)].push(row.clone());
        }
    }
    for (w, batch) in initial.into_iter().enumerate() {
        if !batch.is_empty() {
            in_flight.fetch_add(1, Ordering::SeqCst);
            senders[w].send(batch).expect("receiver alive");
        }
    }

    let results: Vec<Result<Relation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(me, inbox)| {
                let senders = senders.clone();
                let schema = schema.clone();
                let in_flight = &in_flight;
                let cross_rows = &cross_rows;
                let abort = &abort;
                scope.spawn(move || -> Result<Relation> {
                    let fail = |e: mura_core::MuraError| {
                        abort.store(true, Ordering::SeqCst);
                        e
                    };
                    let mut acc = Relation::new(schema.clone());
                    loop {
                        let batch = match inbox.recv_timeout(Duration::from_millis(1)) {
                            Ok(b) => b,
                            Err(_) => {
                                if abort.load(Ordering::SeqCst)
                                    || in_flight.load(Ordering::SeqCst) == 0
                                {
                                    return Ok(acc);
                                }
                                // Keep deadline/cancellation live even while
                                // idle-waiting for batches.
                                budget.check().map_err(fail)?;
                                continue;
                            }
                        };
                        if abort.load(Ordering::SeqCst) {
                            return Ok(acc);
                        }
                        budget.check().map_err(fail)?;
                        // Deduplicate against what this owner already has.
                        let mut delta = Relation::new(schema.clone());
                        for row in batch {
                            if acc.insert(row.clone()) {
                                delta.insert(row);
                            }
                        }
                        if !delta.is_empty() {
                            budget.charge(delta.len() as u64).map_err(fail)?;
                            // Apply every recursive branch to the delta and
                            // route the produced rows to their owners.
                            let mut outgoing: Vec<Vec<Row>> =
                                (0..senders.len()).map(|_| Vec::new()).collect();
                            for p in prepared {
                                let produced = eval_branch(p, &delta).map_err(fail)?;
                                for row in produced.into_rows() {
                                    outgoing[row_owner(&row, senders.len())].push(row);
                                }
                            }
                            for (w, out) in outgoing.into_iter().enumerate() {
                                if out.is_empty() {
                                    continue;
                                }
                                if w != me {
                                    cross_rows.fetch_add(out.len() as i64, Ordering::Relaxed);
                                }
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                // A receiver is gone only if its worker
                                // aborted; the abort flag unblocks everyone.
                                let _ = senders[w].send(out);
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let parts = results.into_iter().collect::<Result<Vec<_>>>()?;
    // Account the continuous row routing as one logical shuffle.
    let moved = cross_rows.load(Ordering::Relaxed).max(0) as u64;
    if moved > 0 {
        cluster.metrics().record_shuffle(moved);
    }
    Ok(DistRel::from_parts(schema, parts, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{Database, MuraError};

    fn setup() -> (Database, DistRel, Vec<Term>, Sym, Cluster) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e = Relation::from_pairs(
            src,
            dst,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (7, 8), (8, 9)],
        );
        let step =
            Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
        let cluster = Cluster::new(4);
        let seed = DistRel::from_relation(&e, &cluster);
        (db, seed, vec![step], x, cluster)
    }

    #[test]
    fn async_matches_synchronous_fixpoint() {
        let (db, seed, recs, x, cluster) = setup();
        let budget = Budget::new(None, None);
        let out = eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
        // Reference: plain centralized fixpoint.
        let e = seed.collect();
        let term = Term::cst(e).union(recs[0].clone()).fix(x);
        let expected = mura_core::eval(&term, &db).unwrap();
        assert_eq!(out.collect().sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn async_is_deterministic_in_result() {
        let (_, seed, recs, x, cluster) = setup();
        let budget = Budget::new(None, None);
        let a = eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
        for _ in 0..5 {
            let b = eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
            assert_eq!(a.collect().sorted_rows(), b.collect().sorted_rows());
        }
    }

    #[test]
    fn async_respects_budget() {
        let (_, seed, recs, x, cluster) = setup();
        let budget = Budget::new(Some(3), None);
        let err = eval_async(&seed, &recs, x, &cluster, &budget).unwrap_err();
        assert!(matches!(err, MuraError::ResourceExhausted { .. }));
    }

    #[test]
    fn async_counts_cross_worker_traffic() {
        let (_, seed, recs, x, cluster) = setup();
        let budget = Budget::new(None, None);
        let before = cluster.metrics().snapshot();
        eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
        let delta = cluster.metrics().snapshot().since(&before);
        assert!(delta.rows_shuffled > 0, "{delta:?}");
    }
}
