//! Asynchronous distributed fixpoint evaluation (`P_async`).
//!
//! The paper notes (§VI) that Myria offers both a synchronous and an
//! *asynchronous* evaluation mode for recursive Datalog. This module
//! implements that third strategy on our substrate, complementing `P_gld`
//! (synchronized iterations) and `P_plw` (no communication at all):
//!
//! * every tuple of the recursive relation is **owned** by the worker its
//!   full-row hash maps to;
//! * workers run independent loops: receive a batch of candidate tuples,
//!   keep the genuinely new ones, apply the recursive step to that delta,
//!   and route the produced tuples to their owners — **no barriers**;
//! * termination uses an in-flight message counter: a batch is counted
//!   before it is sent and un-counted only after the receiver has both
//!   deduplicated it and sent all derived batches, so the counter reads
//!   zero exactly when the system is quiescent.
//!
//! Soundness does not depend on delivery order: the computed set grows
//! monotonically toward the same least fixpoint (Proposition 1), and
//! per-owner deduplication gives semi-naive behaviour.
//!
//! **Fault tolerance.** Worker bodies run under `catch_unwind`: an injected
//! (or genuine) panic sets the abort flag and surfaces as a retryable
//! [`MuraError::WorkerFailed`], and the supervisor in
//! `DistEvaluator::eval_async_plan` restarts the whole fixpoint from its
//! seed — there is no consistent mid-run snapshot of an asynchronous
//! computation without a Chandy–Lamport-style protocol, so `P_async` always
//! takes the "no checkpoint → full recomputation" recovery path. Injection
//! sites are keyed at worker start (batch boundaries are timing-dependent;
//! worker starts are not) or per accepted row by content hash (the accepted
//! row *set* is deterministic), keeping fault counts reproducible.

use crate::cluster::{payload_text, Cluster};
use crate::distrel::DistRel;
use crate::localfix::{eval_branch, prepare, Budget, Prepared};
use mura_core::fxhash::FxHasher;
use mura_core::{MuraError, Relation, Result, Row, Sym, Term};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

fn row_hash(row: &Row) -> u64 {
    let mut h = FxHasher::default();
    row.hash(&mut h);
    h.finish()
}

fn row_owner(row: &Row, n: usize) -> usize {
    (row_hash(row) as usize) % n
}

/// Evaluates `μ(x = seed ∪ recs)` asynchronously. `recs` must be hoisted
/// (every `x`-free subterm already a constant, as for `P_plw`).
pub fn eval_async(
    seed: &DistRel,
    recs: &[Term],
    x: Sym,
    cluster: &Cluster,
    budget: &Budget,
) -> Result<DistRel> {
    let site = cluster.fault().next_site();
    eval_async_at(seed, recs, x, cluster, budget, site, 0, None)
}

/// The supervised entry point: runs one attempt of the asynchronous
/// fixpoint at an explicit fault `site`. The restart supervisor pins the
/// site across attempts so afflicted workers heal deterministically after
/// [`crate::fault::FaultConfig::failures_per_site`] attempts.
///
/// `resume` carries maintained `(acc, delta)` state for incremental view
/// maintenance: each owner preloads its slice of `acc \ delta` (known
/// totals nothing needs to be derived from again), while the frontier
/// `delta` travels as ordinary batches alongside the seed. A restart of
/// the whole attempt reuses the same resume state, so recovery never
/// degrades to a from-scratch recomputation by accident.
#[allow(clippy::too_many_arguments)]
pub fn eval_async_at(
    seed: &DistRel,
    recs: &[Term],
    x: Sym,
    cluster: &Cluster,
    budget: &Budget,
    site: u64,
    attempt: u32,
    resume: Option<&(Relation, Relation)>,
) -> Result<DistRel> {
    let n = cluster.workers();
    let fault = cluster.fault();
    let schema = seed.schema().clone();
    // Prepare once (constant folding + index builds) and share the branches
    // across all workers — the indexes are built per fixpoint, not per
    // worker or per batch.
    let prepared: Vec<Prepared<Relation>> =
        recs.iter().map(|r| prepare(r, x, &schema)).collect::<Result<_>>()?;
    // Charge the cached indexes/constants plus the seed against the byte
    // budget before spawning any worker: an over-budget setup fails typed
    // (MemoryExceeded) instead of mid-recursion.
    budget.charge_bytes(prepared.iter().map(|p| p.cached_bytes()).sum())?;
    budget.charge_bytes(mura_core::rel_bytes(seed.len() as u64, schema.arity()))?;
    let prepared = &prepared;
    // Channels: one inbox per worker.
    let mut senders: Vec<Sender<Vec<Row>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Vec<Row>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    // In-flight batches. Sends increment; a receiver decrements only after
    // processing a batch *and* sending everything derived from it.
    let in_flight = AtomicI64::new(0);
    let cross_rows = AtomicI64::new(0);
    // A failing worker (budget/timeout/injected fault) must not leave the
    // others spinning on a counter that will never reach zero.
    let abort = std::sync::atomic::AtomicBool::new(false);

    // Seed every worker with the rows it owns.
    let mut initial: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
    for part in seed.parts() {
        for row in part.iter() {
            initial[row_owner(row, n)].push(row.clone());
        }
    }
    // Resumed state: each owner preloads its slice of `acc \ delta` so
    // nothing is re-derived from known totals, while the maintenance
    // frontier rows travel as ordinary batches — a preloaded frontier row
    // would be deduplicated on receipt and never derived from.
    let mut preload: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
    if let Some((acc0, delta0)) = resume {
        budget.charge_bytes(mura_core::rel_bytes(acc0.len() as u64, schema.arity()))?;
        for row in acc0.iter() {
            if !delta0.contains(row) {
                preload[row_owner(row, n)].push(row.clone());
            }
        }
        for row in delta0.iter() {
            initial[row_owner(row, n)].push(row.clone());
        }
    }
    for (w, batch) in initial.into_iter().enumerate() {
        if !batch.is_empty() {
            in_flight.fetch_add(1, Ordering::SeqCst);
            senders[w].send(batch).expect("receiver alive");
        }
    }

    // Each worker returns its partition plus locally-counted row drop/dup
    // injections; the counts reach [`FaultPlan`] stats only when the whole
    // attempt succeeds (a worker may process any number of rows before
    // noticing an abort, so mid-abort counts are not reproducible).
    let results: Vec<Result<(Relation, u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .zip(preload)
            .enumerate()
            .map(|(me, (inbox, mine))| {
                let senders = senders.clone();
                let schema = schema.clone();
                let in_flight = &in_flight;
                let cross_rows = &cross_rows;
                let abort = &abort;
                scope.spawn(move || -> Result<(Relation, u64, u64)> {
                    let body =
                        catch_unwind(AssertUnwindSafe(|| -> Result<(Relation, u64, u64)> {
                            // Any failing exit must raise the abort flag, or the
                            // surviving workers would spin forever on an
                            // in-flight counter that can no longer reach zero.
                            let fail = |e: MuraError| {
                                abort.store(true, Ordering::SeqCst);
                                e
                            };
                            // Worker-start injection point: a panicking or
                            // transiently failing worker models a machine lost
                            // mid-recursion.
                            fault.maybe_panic(site, me, 0, attempt);
                            fault.maybe_transient(site, me, 0, attempt).map_err(fail)?;
                            fault.maybe_memory_pressure(site, me, 0, attempt).map_err(fail)?;
                            if let Some(d) = fault.straggler_delay(site, me, 0, attempt) {
                                std::thread::sleep(d);
                            }
                            let mut acc = Relation::new(schema.clone());
                            for row in mine {
                                acc.insert(row);
                            }
                            let (mut drops, mut dups) = (0u64, 0u64);
                            loop {
                                let batch = match inbox.recv_timeout(Duration::from_millis(1)) {
                                    Ok(b) => b,
                                    Err(_) => {
                                        if abort.load(Ordering::SeqCst)
                                            || in_flight.load(Ordering::SeqCst) == 0
                                        {
                                            return Ok((acc, drops, dups));
                                        }
                                        // Keep deadline/cancellation live even
                                        // while idle-waiting for batches.
                                        budget.check().map_err(fail)?;
                                        continue;
                                    }
                                };
                                if abort.load(Ordering::SeqCst) {
                                    return Ok((acc, drops, dups));
                                }
                                budget.check().map_err(fail)?;
                                // Deduplicate against what this owner already
                                // has. Each genuinely-new row is also the
                                // deterministic injection point for message
                                // drops (first copy lost, retransmitted) and
                                // duplications (second copy absorbed here by
                                // set semantics) — each owned row is accepted
                                // exactly once per run, so the counts are
                                // reproducible even though batch boundaries are
                                // not.
                                let mut delta = Relation::new(schema.clone());
                                for row in batch {
                                    if acc.insert(row.clone()) {
                                        if fault.is_active() {
                                            let h = row_hash(&row);
                                            if fault.would_drop_row(h) {
                                                drops += 1;
                                            }
                                            if fault.would_duplicate_row(h) {
                                                dups += 1;
                                            }
                                        }
                                        delta.insert(row);
                                    }
                                }
                                if !delta.is_empty() {
                                    budget.charge(delta.len() as u64).map_err(fail)?;
                                    budget
                                        .charge_bytes(mura_core::rel_bytes(
                                            delta.len() as u64,
                                            schema.arity(),
                                        ))
                                        .map_err(fail)?;
                                    // Apply every recursive branch to the delta
                                    // and route the produced rows to their
                                    // owners.
                                    let mut outgoing: Vec<Vec<Row>> =
                                        (0..senders.len()).map(|_| Vec::new()).collect();
                                    for p in prepared {
                                        let produced = eval_branch(p, &delta).map_err(fail)?;
                                        for row in produced.into_rows() {
                                            outgoing[row_owner(&row, senders.len())].push(row);
                                        }
                                    }
                                    for (w, out) in outgoing.into_iter().enumerate() {
                                        if out.is_empty() {
                                            continue;
                                        }
                                        if w != me {
                                            cross_rows
                                                .fetch_add(out.len() as i64, Ordering::Relaxed);
                                        }
                                        in_flight.fetch_add(1, Ordering::SeqCst);
                                        // A receiver is gone only if its worker
                                        // aborted; the abort flag unblocks
                                        // everyone.
                                        let _ = senders[w].send(out);
                                    }
                                }
                                in_flight.fetch_sub(1, Ordering::SeqCst);
                            }
                        }));
                    body.unwrap_or_else(|payload| {
                        abort.store(true, Ordering::SeqCst);
                        Err(MuraError::WorkerFailed {
                            worker: me,
                            payload: payload_text(payload.as_ref()),
                        })
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(MuraError::WorkerFailed {
                        worker: i,
                        payload: payload_text(payload.as_ref()),
                    })
                })
            })
            .collect()
    });
    let mut parts = Vec::with_capacity(n);
    let (mut drops, mut dups) = (0u64, 0u64);
    for r in results {
        let (part, d, u) = r?;
        parts.push(part);
        drops += d;
        dups += u;
    }
    // The attempt succeeded: flush the per-worker injection counts.
    if drops > 0 {
        fault.record_drops(drops);
    }
    if dups > 0 {
        fault.record_duplicates(dups);
    }
    // Account the continuous row routing as one logical shuffle.
    let moved = cross_rows.load(Ordering::Relaxed).max(0) as u64;
    if moved > 0 {
        cluster.metrics().record_shuffle(moved);
    }
    Ok(DistRel::from_parts(schema, parts, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan, RecoveryPolicy};
    use mura_core::{Database, MuraError};
    use std::sync::Arc;

    fn setup() -> (Database, DistRel, Vec<Term>, Sym, Cluster) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e = Relation::from_pairs(
            src,
            dst,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (7, 8), (8, 9)],
        );
        let step =
            Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
        let cluster = Cluster::new(4);
        let seed = DistRel::from_relation(&e, &cluster);
        (db, seed, vec![step], x, cluster)
    }

    #[test]
    fn async_matches_synchronous_fixpoint() {
        let (db, seed, recs, x, cluster) = setup();
        let budget = Budget::new(None, None);
        let out = eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
        // Reference: plain centralized fixpoint.
        let e = seed.collect();
        let term = Term::cst(e).union(recs[0].clone()).fix(x);
        let expected = mura_core::eval(&term, &db).unwrap();
        assert_eq!(out.collect().sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn async_is_deterministic_in_result() {
        let (_, seed, recs, x, cluster) = setup();
        let budget = Budget::new(None, None);
        let a = eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
        for _ in 0..5 {
            let b = eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
            assert_eq!(a.collect().sorted_rows(), b.collect().sorted_rows());
        }
    }

    #[test]
    fn async_respects_budget() {
        let (_, seed, recs, x, cluster) = setup();
        let budget = Budget::new(Some(3), None);
        let err = eval_async(&seed, &recs, x, &cluster, &budget).unwrap_err();
        assert!(matches!(err, MuraError::ResourceExhausted { .. }));
    }

    #[test]
    fn async_counts_cross_worker_traffic() {
        let (_, seed, recs, x, cluster) = setup();
        let budget = Budget::new(None, None);
        let before = cluster.metrics().snapshot();
        eval_async(&seed, &recs, x, &cluster, &budget).unwrap();
        let delta = cluster.metrics().snapshot().since(&before);
        assert!(delta.rows_shuffled > 0, "{delta:?}");
    }

    #[test]
    fn async_worker_panic_is_captured_not_fatal() {
        let (_, seed, recs, x, _) = setup();
        let cfg = FaultConfig { panic_prob: 1.0, seed: 11, ..Default::default() };
        let plan = Arc::new(FaultPlan::new(cfg));
        let cluster = Cluster::new(4).with_faults(Arc::clone(&plan), RecoveryPolicy::default());
        let budget = Budget::new(None, None);
        let err = eval_async(&seed, &recs, x, &cluster, &budget).unwrap_err();
        assert!(matches!(err, MuraError::WorkerFailed { .. }), "{err:?}");
        assert!(plan.snapshot().injected_panics > 0);
    }

    #[test]
    fn async_heals_on_retried_attempt() {
        // attempt ≥ failures_per_site: the same site no longer fires, so a
        // restart of the whole fixpoint (the supervisor's recovery path)
        // succeeds and matches the fault-free result.
        let (_, seed, recs, x, fault_free) = setup();
        let budget = Budget::new(None, None);
        let expected = eval_async(&seed, &recs, x, &fault_free, &budget).unwrap();
        let cfg = FaultConfig { panic_prob: 1.0, seed: 11, ..Default::default() };
        let plan = Arc::new(FaultPlan::new(cfg));
        let cluster = Cluster::new(4).with_faults(plan, RecoveryPolicy::default());
        let site = cluster.fault().next_site();
        assert!(eval_async_at(&seed, &recs, x, &cluster, &budget, site, 0, None).is_err());
        let out = eval_async_at(&seed, &recs, x, &cluster, &budget, site, 1, None).unwrap();
        assert_eq!(out.collect().sorted_rows(), expected.collect().sorted_rows());
    }
}
