//! Distributed (partitioned) relations — the simulator's RDD/Dataset.
//!
//! A [`DistRel`] is a relation split into one partition per worker.
//! Operators either run partition-wise (free) or require data movement
//! (charged to [`CommStats`](crate::metrics::CommStats)):
//!
//! * `filter` / `rename` / `antiproject` — partition-wise;
//! * `repartition` — a shuffle (all rows written, like Spark's
//!   shuffle-write);
//! * `join` — broadcast join (small side replicated) or shuffle join
//!   (both sides co-partitioned on the join key);
//! * `union` / `minus` / `distinct` — partition-wise when both sides are
//!   co-partitioned on a common key (equal rows then colocate), otherwise
//!   preceded by a shuffle.
//!
//! Partitioning metadata (`partitioned_by`) is an *ordered* column list:
//! the hash is computed over key values in that order, so the metadata
//! stays valid under renames (values don't move) and is compared
//! positionally when deciding whether a shuffle can be skipped.

use crate::cluster::Cluster;
use mura_core::eval::apply_filter;
use mura_core::fxhash::FxHasher;
use mura_core::{Pred, Relation, Result, Row, Schema, Sym, Value};
use std::hash::{Hash, Hasher};

/// A relation partitioned across the workers of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct DistRel {
    schema: Schema,
    parts: Vec<Relation>,
    /// Ordered hash key this relation is partitioned by, if any.
    partitioned_by: Option<Vec<Sym>>,
}

/// Hash of the key fields of a row (positions into the row).
fn key_hash(row: &[Value], key_pos: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &p in key_pos {
        row[p].hash(&mut h);
    }
    h.finish()
}

impl DistRel {
    /// Empty distributed relation.
    pub fn empty(schema: Schema, cluster: &Cluster) -> Self {
        DistRel {
            parts: (0..cluster.workers()).map(|_| Relation::new(schema.clone())).collect(),
            partitioned_by: Some(schema.columns().to_vec()),
            schema,
        }
    }

    /// Loads a relation into the cluster, partitioned by full-row hash.
    /// (Initial placement of base data — not charged as a shuffle.)
    pub fn from_relation(rel: &Relation, cluster: &Cluster) -> Self {
        let schema = rel.schema().clone();
        let key: Vec<Sym> = schema.columns().to_vec();
        let key_pos: Vec<usize> = (0..schema.arity()).collect();
        let n = cluster.workers();
        let mut parts: Vec<Relation> = (0..n).map(|_| Relation::new(schema.clone())).collect();
        for row in rel.iter() {
            let p = (key_hash(row, &key_pos) as usize) % n;
            parts[p].insert(row.clone());
        }
        DistRel { schema, parts, partitioned_by: Some(key) }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows across partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// True if all partitions are empty.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// The partitions.
    pub fn parts(&self) -> &[Relation] {
        &self.parts
    }

    /// Current partitioning key (ordered), if known.
    pub fn partitioned_by(&self) -> Option<&[Sym]> {
        self.partitioned_by.as_deref()
    }

    /// Gathers all partitions into one local relation (a driver collect).
    pub fn collect(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for p in &self.parts {
            out.absorb(p.clone());
        }
        out
    }

    /// Partition-wise filter.
    pub fn filter_preds(&self, preds: &[Pred], cluster: &Cluster) -> Result<DistRel> {
        let parts = cluster.try_par_map(&self.parts, |_, p| apply_filter(p, preds))?;
        Ok(DistRel {
            schema: self.schema.clone(),
            parts,
            partitioned_by: self.partitioned_by.clone(),
        })
    }

    /// Partition-wise rename. Keeps partitioning metadata (values do not
    /// move; the ordered key is renamed in place).
    pub fn rename(&self, from: Sym, to: Sym, cluster: &Cluster) -> Result<DistRel> {
        let parts = cluster.par_map(&self.parts, |_, p| p.rename(from, to))?;
        let schema = parts[0].schema().clone();
        let partitioned_by = self
            .partitioned_by
            .as_ref()
            .map(|key| key.iter().map(|&c| if c == from { to } else { c }).collect());
        Ok(DistRel { schema, parts, partitioned_by })
    }

    /// Partition-wise antiprojection. Partitioning survives only if no key
    /// column is dropped.
    pub fn antiproject(&self, cols: &[Sym], cluster: &Cluster) -> Result<DistRel> {
        let parts = cluster.par_map(&self.parts, |_, p| p.antiproject(cols))?;
        let schema = parts[0].schema().clone();
        let partitioned_by = match &self.partitioned_by {
            Some(key) if key.iter().all(|c| !cols.contains(c)) => Some(key.clone()),
            _ => None,
        };
        Ok(DistRel { schema, parts, partitioned_by })
    }

    /// Repartitions by the given ordered key. Skipped (free) when the data
    /// is already partitioned exactly this way; otherwise one shuffle of
    /// every row is charged.
    ///
    /// This is the exchange the fault plan targets for message drops and
    /// duplications: a dropped bucket is detected and retransmitted
    /// (at-least-once delivery — counted, no data lost), a duplicated
    /// bucket is delivered twice and absorbed by set semantics.
    pub fn repartition(&self, key: &[Sym], cluster: &Cluster) -> Result<DistRel> {
        if self.partitioned_by.as_deref() == Some(key) {
            return Ok(self.clone());
        }
        if cluster.workers() == 1 {
            // Nothing can move between workers; only the metadata changes.
            let mut out = self.clone();
            out.partitioned_by = Some(key.to_vec());
            return Ok(out);
        }
        let key_pos: Vec<usize> = key
            .iter()
            .map(|&c| self.schema.position(c).expect("repartition key must be in schema"))
            .collect();
        let n = cluster.workers();
        cluster.metrics().record_shuffle(self.len() as u64);
        let exchange_site = cluster.fault().next_site();
        // Each worker buckets its partition; the backend moves the buckets
        // (driver-side merge on the simulator, real sockets on ProcCluster).
        let bucketed: Vec<Vec<Vec<Row>>> = cluster.par_map(&self.parts, |_, p| {
            let mut buckets: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
            for row in p.iter() {
                buckets[(key_hash(row, &key_pos) as usize) % n].push(row.clone());
            }
            buckets
        })?;
        let parts = cluster.exchange_at(exchange_site, &self.schema, bucketed)?;
        Ok(DistRel { schema: self.schema.clone(), parts, partitioned_by: Some(key.to_vec()) })
    }

    /// Global distinct: partitions are sets already, so colocating equal
    /// rows (full-row repartition) suffices. Free when already partitioned
    /// by any key (equal rows already colocate).
    pub fn distinct(&self, cluster: &Cluster) -> Result<DistRel> {
        if self.partitioned_by.is_some() {
            return Ok(self.clone());
        }
        let key: Vec<Sym> = self.schema.columns().to_vec();
        self.repartition(&key, cluster)
    }

    /// Set union. Partition-wise (free) when both sides share a
    /// partitioning key; otherwise both sides are repartitioned by full
    /// row first.
    pub fn union(&self, other: &DistRel, cluster: &Cluster) -> Result<DistRel> {
        assert_eq!(self.schema, other.schema, "union of incompatible schemas");
        let (a, b) = self.copartition(other, cluster)?;
        let pairs: Vec<(Relation, Relation)> =
            a.parts.iter().cloned().zip(b.parts.iter().cloned()).collect();
        let parts = cluster.par_map(&pairs, |_, (x, y)| x.union(y))?;
        Ok(DistRel { schema: a.schema.clone(), parts, partitioned_by: a.partitioned_by.clone() })
    }

    /// Set difference `self \ other`; co-partitions like [`DistRel::union`].
    pub fn minus(&self, other: &DistRel, cluster: &Cluster) -> Result<DistRel> {
        assert_eq!(self.schema, other.schema, "difference of incompatible schemas");
        let (a, b) = self.copartition(other, cluster)?;
        let pairs: Vec<(Relation, Relation)> =
            a.parts.iter().cloned().zip(b.parts.iter().cloned()).collect();
        let parts = cluster.par_map(&pairs, |_, (x, y)| x.minus(y))?;
        Ok(DistRel { schema: a.schema.clone(), parts, partitioned_by: a.partitioned_by.clone() })
    }

    /// Ensures both relations are partitioned by the same key (equal rows
    /// colocated). Free if they already share one.
    fn copartition(&self, other: &DistRel, cluster: &Cluster) -> Result<(DistRel, DistRel)> {
        if self.partitioned_by.is_some() && self.partitioned_by == other.partitioned_by {
            return Ok((self.clone(), other.clone()));
        }
        let key: Vec<Sym> = self.schema.columns().to_vec();
        Ok((self.repartition(&key, cluster)?, other.repartition(&key, cluster)?))
    }

    /// Shuffle (co-partitioned) natural join on the common columns.
    pub fn join_shuffle(&self, other: &DistRel, cluster: &Cluster) -> Result<DistRel> {
        let common: Vec<Sym> = self.schema.intersection(&other.schema);
        assert!(!common.is_empty(), "shuffle join requires common columns");
        let a = self.repartition(&common, cluster)?;
        let b = other.repartition(&common, cluster)?;
        let plan = mura_core::relation::join_plan(&a.schema, &b.schema);
        let pairs: Vec<(Relation, Relation)> =
            a.parts.iter().cloned().zip(b.parts.iter().cloned()).collect();
        let parts = cluster.par_map(&pairs, |_, (x, y)| plan.execute(x, y))?;
        let schema = plan.out_schema.clone();
        Ok(DistRel { schema, parts, partitioned_by: Some(common) })
    }

    /// Broadcast join: `other` is collected and replicated to every worker
    /// (the replication is charged to the metrics).
    pub fn join_broadcast(&self, other: &Relation, cluster: &Cluster) -> Result<DistRel> {
        cluster.broadcast_rel(other)?;
        self.join_local(other, cluster)
    }

    /// Joins against a relation every worker already holds (an existing
    /// broadcast variable) — no communication charged.
    pub fn join_local(&self, other: &Relation, cluster: &Cluster) -> Result<DistRel> {
        let plan = mura_core::relation::join_plan(&self.schema, other.schema());
        let parts = cluster.par_map(&self.parts, |_, p| plan.execute(p, other))?;
        // Output keeps big-side placement; metadata survives if the key is
        // still part of the output schema (it always is for natural joins).
        Ok(DistRel {
            schema: plan.out_schema.clone(),
            parts,
            partitioned_by: self.partitioned_by.clone(),
        })
    }

    /// Antijoin retaining rows of `self` without a match in `other`
    /// (broadcast of `other`, charged).
    pub fn antijoin_broadcast(&self, other: &Relation, cluster: &Cluster) -> Result<DistRel> {
        cluster.broadcast_rel(other)?;
        self.antijoin_local(other, cluster)
    }

    /// Antijoin against a relation every worker already holds — no
    /// communication charged.
    pub fn antijoin_local(&self, other: &Relation, cluster: &Cluster) -> Result<DistRel> {
        let parts = cluster.par_map(&self.parts, |_, p| p.antijoin(other))?;
        Ok(DistRel {
            schema: self.schema.clone(),
            parts,
            partitioned_by: self.partitioned_by.clone(),
        })
    }

    /// Antijoin via co-partitioning on the common columns.
    pub fn antijoin_shuffle(&self, other: &DistRel, cluster: &Cluster) -> Result<DistRel> {
        let common: Vec<Sym> = self.schema.intersection(&other.schema);
        assert!(!common.is_empty(), "shuffle antijoin requires common columns");
        let a = self.repartition(&common, cluster)?;
        let b = other.repartition(&common, cluster)?;
        let pairs: Vec<(Relation, Relation)> =
            a.parts.iter().cloned().zip(b.parts.iter().cloned()).collect();
        let parts = cluster.par_map(&pairs, |_, (x, y)| x.antijoin(y))?;
        Ok(DistRel { schema: a.schema.clone(), parts, partitioned_by: a.partitioned_by.clone() })
    }

    /// Builds a `DistRel` from explicit partitions (used by the local
    /// fixpoint plans).
    pub fn from_parts(
        schema: Schema,
        parts: Vec<Relation>,
        partitioned_by: Option<Vec<Sym>>,
    ) -> Self {
        DistRel { schema, parts, partitioned_by }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Value;

    fn cluster() -> Cluster {
        Cluster::new(4)
    }

    fn rel(db: &mut mura_core::Database, pairs: &[(u64, u64)]) -> Relation {
        let src = db.intern("src");
        let dst = db.intern("dst");
        Relation::from_pairs(src, dst, pairs.iter().copied())
    }

    #[test]
    fn round_trip_collect() {
        let mut db = mura_core::Database::new();
        let r = rel(&mut db, &[(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]);
        let c = cluster();
        let d = DistRel::from_relation(&r, &c);
        assert_eq!(d.len(), 5);
        assert_eq!(d.collect().sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn repartition_counts_shuffle_once() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let r = rel(&mut db, &[(1, 2), (1, 3), (2, 4), (3, 5)]);
        let c = cluster();
        let d = DistRel::from_relation(&r, &c);
        let before = c.metrics().snapshot();
        let d2 = d.repartition(&[src], &c).unwrap();
        let after = c.metrics().snapshot().since(&before);
        assert_eq!(after.shuffles, 1);
        assert_eq!(after.rows_shuffled, 4);
        // Idempotent: same key again is free.
        let d3 = d2.repartition(&[src], &c).unwrap();
        let after2 = c.metrics().snapshot().since(&before);
        assert_eq!(after2.shuffles, 1);
        assert_eq!(d3.collect().sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn repartition_colocates_by_key() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let r = rel(&mut db, &[(1, 2), (1, 3), (1, 4), (2, 5)]);
        let c = cluster();
        let d = DistRel::from_relation(&r, &c).repartition(&[src], &c).unwrap();
        // All rows with src=1 must be in a single partition.
        let mut found = None;
        for (i, p) in d.parts().iter().enumerate() {
            for row in p.iter() {
                if row[p.schema().position(src).unwrap()] == Value::node(1) {
                    match found {
                        None => found = Some(i),
                        Some(j) => assert_eq!(i, j, "src=1 rows scattered"),
                    }
                }
            }
        }
        assert!(found.is_some());
    }

    #[test]
    fn union_partitionwise_when_copartitioned() {
        let mut db = mura_core::Database::new();
        let r1 = rel(&mut db, &[(1, 2), (3, 4)]);
        let r2 = rel(&mut db, &[(3, 4), (5, 6)]);
        let c = cluster();
        let a = DistRel::from_relation(&r1, &c);
        let b = DistRel::from_relation(&r2, &c);
        let before = c.metrics().snapshot();
        let u = a.union(&b, &c).unwrap();
        // Both loaded with the same full-row key → no shuffle.
        assert_eq!(c.metrics().snapshot().since(&before).shuffles, 0);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn minus_removes_colocated() {
        let mut db = mura_core::Database::new();
        let r1 = rel(&mut db, &[(1, 2), (3, 4), (5, 6)]);
        let r2 = rel(&mut db, &[(3, 4)]);
        let c = cluster();
        let a = DistRel::from_relation(&r1, &c);
        let b = DistRel::from_relation(&r2, &c);
        let m = a.minus(&b, &c).unwrap();
        assert_eq!(m.len(), 2);
        assert!(!m.collect().contains(&[Value::node(3), Value::node(4)]));
    }

    #[test]
    fn shuffle_join_matches_local_join() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let r = rel(&mut db, &[(1, 2), (2, 3), (3, 4), (2, 5)]);
        let c = cluster();
        // r renamed (dst→m) joined with r renamed (src→m): length-2 paths.
        let left = DistRel::from_relation(&r, &c).rename(dst, m, &c).unwrap();
        let right = DistRel::from_relation(&r, &c).rename(src, m, &c).unwrap();
        let j = left.join_shuffle(&right, &c).unwrap();
        let expected = r.rename(dst, m).join(&r.rename(src, m));
        assert_eq!(j.collect().sorted_rows(), expected.sorted_rows());
        assert_eq!(j.partitioned_by(), Some(&[m][..]));
    }

    #[test]
    fn broadcast_join_matches_and_counts() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let r = rel(&mut db, &[(1, 2), (2, 3), (3, 4)]);
        let c = cluster();
        let left = DistRel::from_relation(&r, &c).rename(dst, m, &c).unwrap();
        let small = r.rename(src, m);
        let before = c.metrics().snapshot();
        let j = left.join_broadcast(&small, &c).unwrap();
        let d = c.metrics().snapshot().since(&before);
        assert_eq!(d.broadcasts, 1);
        assert_eq!(d.rows_broadcast, 3 * 3);
        let expected = r.rename(dst, m).join(&r.rename(src, m));
        assert_eq!(j.collect().sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn antijoin_variants_match_local() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let r1 = rel(&mut db, &[(1, 2), (2, 3), (3, 4)]);
        let schema = Schema::new(vec![src]);
        let filt = Relation::from_rows(schema, [vec![Value::node(2)].into_boxed_slice()]);
        let c = cluster();
        let a = DistRel::from_relation(&r1, &c);
        let expected = r1.antijoin(&filt);
        let via_broadcast = a.antijoin_broadcast(&filt, &c).unwrap();
        assert_eq!(via_broadcast.collect().sorted_rows(), expected.sorted_rows());
        let b = DistRel::from_relation(&filt, &c);
        let via_shuffle = a.antijoin_shuffle(&b, &c).unwrap();
        assert_eq!(via_shuffle.collect().sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn rename_keeps_colocation_usable() {
        // After renaming the key column, a repartition on the renamed key
        // must be skipped only if positionally identical — and results must
        // still be correct either way.
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let q = db.intern("q");
        let r = rel(&mut db, &[(1, 2), (1, 3), (2, 4)]);
        let c = cluster();
        let d = DistRel::from_relation(&r, &c).repartition(&[src], &c).unwrap();
        let d2 = d.rename(src, q, &c).unwrap();
        assert_eq!(d2.partitioned_by(), Some(&[q][..]));
        let d3 = d2.repartition(&[q], &c).unwrap();
        assert_eq!(d3.collect().sorted_rows(), r.rename(src, q).sorted_rows());
    }

    #[test]
    fn antiproject_drops_partitioning_when_key_dropped() {
        let mut db = mura_core::Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let r = rel(&mut db, &[(1, 2), (2, 3)]);
        let c = cluster();
        let d = DistRel::from_relation(&r, &c).repartition(&[src], &c).unwrap();
        let dropped = d.antiproject(&[src], &c).unwrap();
        assert_eq!(dropped.partitioned_by(), None);
        let kept = d.antiproject(&[dst], &c).unwrap();
        assert_eq!(kept.partitioned_by(), Some(&[src][..]));
    }

    #[test]
    fn distinct_dedups_across_partitions() {
        // Build parts with duplicates across partitions explicitly.
        let mut db = mura_core::Database::new();
        let r1 = rel(&mut db, &[(1, 2)]);
        let r2 = rel(&mut db, &[(1, 2), (3, 4)]);
        let c = Cluster::new(2);
        let d = DistRel::from_parts(r1.schema().clone(), vec![r1.clone(), r2.clone()], None);
        assert_eq!(d.len(), 3, "duplicate present before distinct");
        let dd = d.distinct(&c).unwrap();
        assert_eq!(dd.len(), 2);
    }
}
