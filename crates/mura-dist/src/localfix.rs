//! Worker-local fixpoint execution for the `P_plw` plan.
//!
//! Each worker receives its share of the fixpoint's constant part plus
//! broadcast copies of every loop-invariant relation, and iterates the
//! recursive step locally — no cluster communication at all during the
//! recursion (the paper's key advantage of `P_plw` over `P_gld`).
//!
//! Two interchangeable local engines implement the iteration, mirroring the
//! paper's two `P_plw` implementations (§IV-B a):
//!
//! * [`LocalEngine::SetRdd`] — hash-set relations (BigDatalog's SetRDD
//!   style);
//! * [`LocalEngine::Sorted`] — sort-merge relations standing in for the
//!   per-worker PostgreSQL instances of `P_plw^pg`.

use crate::fault::{FaultPlan, RecoveryPolicy};
use crate::sorted::SortedRelation;
use mura_core::kernel::kernel_stats;
use mura_core::mem::{mem_gauge, rel_bytes};
use mura_core::{
    CancellationToken, JoinIndex, KeyIndex, MuraError, Pred, Relation, Result, Row, Schema, Sym,
    Term, Value,
};
use mura_obs::trace::{EventKind, PlanKind, RecoveryKind, TraceEvent, TraceSink};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which local engine runs the per-worker loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalEngine {
    /// Hash-based sets (the paper's `P_plw^s`, the faster variant).
    #[default]
    SetRdd,
    /// Sort-merge engine (the paper's `P_plw^pg` stand-in).
    Sorted,
}

/// Shared row/byte budget + deadline + cancellation, checked by every
/// worker loop. Models the paper's out-of-memory failures and timeouts,
/// and gives the serving layer a handle to stop a query between
/// supersteps.
///
/// Byte charges are mirrored into the process-wide
/// [`mem_gauge`](mura_core::mem::mem_gauge) and released when the budget
/// drops (i.e. when the query's evaluation ends), so the serving layer can
/// observe the live cross-query working set.
#[derive(Debug, Default)]
pub struct Budget {
    produced: AtomicU64,
    used_bytes: AtomicU64,
    max_rows: Option<u64>,
    max_bytes: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancellationToken>,
}

impl Budget {
    /// A budget with optional row cap and deadline.
    pub fn new(max_rows: Option<u64>, deadline: Option<Instant>) -> Self {
        Budget {
            produced: AtomicU64::new(0),
            used_bytes: AtomicU64::new(0),
            max_rows,
            max_bytes: None,
            deadline,
            cancel: None,
        }
    }

    /// Attaches a cancellation token, consulted by [`Budget::check`].
    pub fn with_cancel(mut self, cancel: Option<CancellationToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches a byte budget, consulted by [`Budget::charge_bytes`].
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Charges `rows` produced rows; errors when over budget, past the
    /// deadline, or cancelled.
    pub fn charge(&self, rows: u64) -> Result<()> {
        let total = self.produced.fetch_add(rows, Ordering::Relaxed) + rows;
        if let Some(max) = self.max_rows {
            if total > max {
                return Err(MuraError::ResourceExhausted {
                    what: "materialized rows",
                    limit: max,
                    reached: total,
                });
            }
        }
        self.check()
    }

    /// Charges an estimated `bytes` of materialized memory against both
    /// this query's byte budget and the process-wide gauge. Errors with
    /// [`MuraError::MemoryExceeded`] when the per-query budget is breached.
    pub fn charge_bytes(&self, bytes: u64) -> Result<()> {
        if bytes == 0 {
            return Ok(());
        }
        mem_gauge().add(bytes);
        let total = self.used_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(limit) = self.max_bytes {
            if total > limit {
                return Err(MuraError::MemoryExceeded { used: total, limit });
            }
        }
        Ok(())
    }

    /// Superstep preemption point: errors when past the engine deadline
    /// ([`MuraError::Timeout`]) or when the attached token was cancelled or
    /// its per-request deadline passed (`Cancelled` / `DeadlineExceeded`).
    /// Charges nothing, so loops can call it before producing any rows.
    pub fn check(&self) -> Result<()> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(MuraError::Timeout { millis: 0 });
            }
        }
        if let Some(c) = &self.cancel {
            c.check()?;
        }
        Ok(())
    }

    /// Rows charged so far.
    pub fn produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }

    /// Estimated bytes charged so far.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for Budget {
    fn drop(&mut self) {
        // The query is over: release its working-set estimate from the
        // process gauge (the high-water mark is monotonic and survives).
        let bytes = *self.used_bytes.get_mut();
        if bytes > 0 {
            mem_gauge().sub(bytes);
        }
    }
}

/// Local relation operations shared by the two engines. `Send + Sync` so a
/// branch prepared once can be shared by every worker of a fixpoint.
pub trait LocalRel: Sized + Clone + Send + Sync {
    fn from_relation(r: &Relation) -> Self;
    fn into_relation(self) -> Relation;
    fn schema(&self) -> &Schema;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool;
    fn filter_preds(&self, preds: &[Pred]) -> Result<Self>;
    fn rename_col(&self, from: Sym, to: Sym) -> Self;
    fn antiproject_cols(&self, cols: &[Sym]) -> Self;
    fn join_with(&self, other: &Self) -> Self;
    fn antijoin_with(&self, other: &Self) -> Self;
    fn union_with(&self, other: &Self) -> Self;
    fn minus_with(&self, other: &Self) -> Self;
    /// Iterates rows in the engine's native storage order.
    fn iter_rows(&self) -> impl Iterator<Item = &Row>;
    /// Builds from raw rows, deduplicating as the engine requires.
    fn from_row_vec(schema: Schema, rows: Vec<Row>) -> Self;
}

/// Compiles predicates to a positional closure over a schema.
fn compile_preds(schema: &Schema, preds: &[Pred]) -> Result<Vec<CompiledPred>> {
    let mut out = Vec::with_capacity(preds.len());
    for p in preds {
        for c in p.columns() {
            if !schema.contains(c) {
                return Err(MuraError::UnknownColumn {
                    column: c,
                    schema: schema.clone(),
                    context: "local filter",
                });
            }
        }
        out.push(match p {
            Pred::Eq(c, v) => CompiledPred::Eq(schema.position(*c).unwrap(), *v),
            Pred::Neq(c, v) => CompiledPred::Neq(schema.position(*c).unwrap(), *v),
            Pred::EqCol(a, b) => {
                CompiledPred::EqCol(schema.position(*a).unwrap(), schema.position(*b).unwrap())
            }
        });
    }
    Ok(out)
}

enum CompiledPred {
    Eq(usize, Value),
    Neq(usize, Value),
    EqCol(usize, usize),
}

impl CompiledPred {
    fn matches(&self, row: &[Value]) -> bool {
        match self {
            CompiledPred::Eq(p, v) => row[*p] == *v,
            CompiledPred::Neq(p, v) => row[*p] != *v,
            CompiledPred::EqCol(a, b) => row[*a] == row[*b],
        }
    }
}

impl LocalRel for Relation {
    fn from_relation(r: &Relation) -> Self {
        r.clone()
    }
    fn into_relation(self) -> Relation {
        self
    }
    fn schema(&self) -> &Schema {
        Relation::schema(self)
    }
    fn len(&self) -> usize {
        Relation::len(self)
    }
    fn is_empty(&self) -> bool {
        Relation::is_empty(self)
    }
    fn filter_preds(&self, preds: &[Pred]) -> Result<Self> {
        let compiled = compile_preds(Relation::schema(self), preds)?;
        Ok(self.filter(|row| compiled.iter().all(|p| p.matches(row))))
    }
    fn rename_col(&self, from: Sym, to: Sym) -> Self {
        self.rename(from, to)
    }
    fn antiproject_cols(&self, cols: &[Sym]) -> Self {
        self.antiproject(cols)
    }
    fn join_with(&self, other: &Self) -> Self {
        self.join(other)
    }
    fn antijoin_with(&self, other: &Self) -> Self {
        self.antijoin(other)
    }
    fn union_with(&self, other: &Self) -> Self {
        self.union(other)
    }
    fn minus_with(&self, other: &Self) -> Self {
        self.minus(other)
    }
    fn iter_rows(&self) -> impl Iterator<Item = &Row> {
        self.iter()
    }
    fn from_row_vec(schema: Schema, rows: Vec<Row>) -> Self {
        Relation::from_rows(schema, rows)
    }
}

impl LocalRel for SortedRelation {
    fn from_relation(r: &Relation) -> Self {
        SortedRelation::from_relation(r)
    }
    fn into_relation(self) -> Relation {
        self.to_relation()
    }
    fn schema(&self) -> &Schema {
        SortedRelation::schema(self)
    }
    fn len(&self) -> usize {
        SortedRelation::len(self)
    }
    fn is_empty(&self) -> bool {
        SortedRelation::is_empty(self)
    }
    fn filter_preds(&self, preds: &[Pred]) -> Result<Self> {
        let compiled = compile_preds(SortedRelation::schema(self), preds)?;
        Ok(self.filter(|row| compiled.iter().all(|p| p.matches(row))))
    }
    fn rename_col(&self, from: Sym, to: Sym) -> Self {
        self.rename(from, to)
    }
    fn antiproject_cols(&self, cols: &[Sym]) -> Self {
        self.antiproject(cols)
    }
    fn join_with(&self, other: &Self) -> Self {
        self.join(other)
    }
    fn antijoin_with(&self, other: &Self) -> Self {
        self.antijoin(other)
    }
    fn union_with(&self, other: &Self) -> Self {
        self.union(other)
    }
    fn minus_with(&self, other: &Self) -> Self {
        self.minus(other)
    }
    fn iter_rows(&self) -> impl Iterator<Item = &Row> {
        self.iter()
    }
    fn from_row_vec(schema: Schema, rows: Vec<Row>) -> Self {
        SortedRelation::from_rows(schema, rows)
    }
}

/// A recursive branch compiled for local execution.
///
/// Built once per fixpoint by [`prepare`] and shared by every worker:
///
/// * every `x`-free subtree is **folded** into a single pre-materialized
///   [`Prepared::Const`] before iteration starts (no per-iteration
///   re-evaluation of loop-invariant expressions);
/// * every `Join(delta-side, const-side)` carries a [`JoinIndex`] over the
///   constant side, built once and probed with the delta each iteration
///   ([`Prepared::JoinIdx`]); antijoins against a constant get the analogous
///   cached key-set ([`Prepared::AntijoinIdx`]).
pub enum Prepared<R> {
    Delta,
    Const(R),
    Filter(Vec<Pred>, Box<Prepared<R>>),
    Rename(Sym, Sym, Box<Prepared<R>>),
    AntiProject(Vec<Sym>, Box<Prepared<R>>),
    Join(Box<Prepared<R>>, Box<Prepared<R>>),
    Antijoin(Box<Prepared<R>>, Box<Prepared<R>>),
    Union(Box<Prepared<R>>, Box<Prepared<R>>),
    /// Delta-dependent subtree joined against a loop-invariant side through
    /// a cached build-side index.
    JoinIdx(Box<Prepared<R>>, JoinIndex),
    /// Delta-dependent subtree antijoined against a cached key-set; the
    /// schema is the subtree's output schema.
    AntijoinIdx(Box<Prepared<R>>, KeyIndex, Schema),
}

impl<R: LocalRel> Prepared<R> {
    /// Estimated bytes held for the whole fixpoint by this branch's cached
    /// state: build-side join/antijoin indexes plus folded constants.
    /// Charged against the byte budget once per fixpoint, right after
    /// [`prepare`], so an index build that would blow the budget fails
    /// typed before iteration starts.
    pub fn cached_bytes(&self) -> u64 {
        match self {
            Prepared::Delta => 0,
            Prepared::Const(r) => rel_bytes(r.len() as u64, r.schema().arity()),
            Prepared::Filter(_, t) | Prepared::Rename(_, _, t) | Prepared::AntiProject(_, t) => {
                t.cached_bytes()
            }
            Prepared::Join(a, b) | Prepared::Antijoin(a, b) | Prepared::Union(a, b) => {
                a.cached_bytes() + b.cached_bytes()
            }
            Prepared::JoinIdx(t, idx) => t.cached_bytes() + idx.approx_bytes(),
            Prepared::AntijoinIdx(t, idx, _) => t.cached_bytes() + idx.approx_bytes(),
        }
    }
}

/// Result of `prep`: a fully folded constant, or a delta-dependent kernel
/// with its output schema.
enum Prep<R> {
    Const(Relation),
    Dyn(Prepared<R>, Schema),
}

/// Evaluates a constant folding step, counting it so tests can assert the
/// work happens at prepare time (once per fixpoint), not per iteration.
fn fold<R>(r: Relation) -> Prep<R> {
    kernel_stats().record_const_fold();
    Prep::Const(r)
}

/// Compiles a hoisted recursive branch (all `x`-free subterms are `Cst`):
/// folds loop-invariant subtrees and builds join/antijoin indexes against
/// them. `delta_schema` is the schema bound to the recursion variable.
pub fn prepare<R: LocalRel>(term: &Term, x: Sym, delta_schema: &Schema) -> Result<Prepared<R>> {
    Ok(match prep(term, x, delta_schema)? {
        Prep::Dyn(p, _) => p,
        // A branch without the recursion variable at all: constant forever.
        Prep::Const(r) => Prepared::Const(R::from_relation(&r)),
    })
}

fn prep<R: LocalRel>(term: &Term, x: Sym, delta_schema: &Schema) -> Result<Prep<R>> {
    Ok(match term {
        Term::Var(v) if *v == x => Prep::Dyn(Prepared::Delta, delta_schema.clone()),
        Term::Var(v) => {
            return Err(MuraError::Other(format!(
                "unhoisted variable {v} in local fixpoint branch"
            )))
        }
        Term::Cst(r) => Prep::Const((**r).clone()),
        Term::Filter(ps, t) => match prep(t, x, delta_schema)? {
            Prep::Const(r) => fold(LocalRel::filter_preds(&r, ps)?),
            Prep::Dyn(p, s) => Prep::Dyn(Prepared::Filter(ps.clone(), Box::new(p)), s),
        },
        Term::Rename(a, b, t) => match prep(t, x, delta_schema)? {
            Prep::Const(r) => fold(r.rename(*a, *b)),
            Prep::Dyn(p, s) => {
                let out = s
                    .rename(*a, *b)
                    .unwrap_or_else(|| panic!("invalid rename {a:?} -> {b:?} on {s}"));
                Prep::Dyn(Prepared::Rename(*a, *b, Box::new(p)), out)
            }
        },
        Term::AntiProject(cs, t) => match prep(t, x, delta_schema)? {
            Prep::Const(r) => fold(r.antiproject(cs)),
            Prep::Dyn(p, s) => {
                let out = s
                    .antiproject(cs)
                    .unwrap_or_else(|| panic!("invalid antiprojection of {cs:?} on {s}"));
                Prep::Dyn(Prepared::AntiProject(cs.clone(), Box::new(p)), out)
            }
        },
        Term::Join(a, b) => {
            match (prep(a, x, delta_schema)?, prep(b, x, delta_schema)?) {
                (Prep::Const(ra), Prep::Const(rb)) => fold(ra.join(&rb)),
                // One loop-invariant side: index it once, probe with the
                // delta-dependent side each iteration.
                (Prep::Const(ra), Prep::Dyn(p, s)) | (Prep::Dyn(p, s), Prep::Const(ra)) => {
                    let idx = JoinIndex::build(&s, &ra);
                    let out = idx.out_schema().clone();
                    Prep::Dyn(Prepared::JoinIdx(Box::new(p), idx), out)
                }
                (Prep::Dyn(pa, sa), Prep::Dyn(pb, sb)) => {
                    let out = sa.union(&sb);
                    Prep::Dyn(Prepared::Join(Box::new(pa), Box::new(pb)), out)
                }
            }
        }
        Term::Antijoin(a, b) => {
            match (prep(a, x, delta_schema)?, prep(b, x, delta_schema)?) {
                (Prep::Const(ra), Prep::Const(rb)) => fold(ra.antijoin(&rb)),
                // Loop-invariant right side: cache its key-set.
                (Prep::Dyn(pa, sa), Prep::Const(rb)) => {
                    let idx = KeyIndex::build(&sa, &rb);
                    Prep::Dyn(Prepared::AntijoinIdx(Box::new(pa), idx, sa.clone()), sa)
                }
                (Prep::Const(ra), Prep::Dyn(pb, _)) => {
                    let sa = ra.schema().clone();
                    let ca = Prepared::Const(R::from_relation(&ra));
                    Prep::Dyn(Prepared::Antijoin(Box::new(ca), Box::new(pb)), sa)
                }
                (Prep::Dyn(pa, sa), Prep::Dyn(pb, _)) => {
                    Prep::Dyn(Prepared::Antijoin(Box::new(pa), Box::new(pb)), sa)
                }
            }
        }
        Term::Union(a, b) => match (prep(a, x, delta_schema)?, prep(b, x, delta_schema)?) {
            (Prep::Const(ra), Prep::Const(rb)) => fold(ra.union(&rb)),
            (Prep::Const(ra), Prep::Dyn(p, s)) | (Prep::Dyn(p, s), Prep::Const(ra)) => {
                let ca = Prepared::Const(R::from_relation(&ra));
                Prep::Dyn(Prepared::Union(Box::new(ca), Box::new(p)), s)
            }
            (Prep::Dyn(pa, sa), Prep::Dyn(pb, _)) => {
                Prep::Dyn(Prepared::Union(Box::new(pa), Box::new(pb)), sa)
            }
        },
        Term::Fix(_, _) => {
            return Err(MuraError::Other(
                "nested fixpoint must be hoisted before local execution".into(),
            ))
        }
    })
}

/// Borrow-or-owned evaluation result: `Delta` and `Const` leaves evaluate to
/// borrows (zero-clone), operators to owned values. A union with an empty
/// side passes the other side through unchanged.
enum Ev<'a, R> {
    Ref(&'a R),
    Own(R),
}

impl<R: LocalRel> Ev<'_, R> {
    #[inline]
    fn get(&self) -> &R {
        match self {
            Ev::Ref(r) => r,
            Ev::Own(r) => r,
        }
    }

    #[inline]
    fn into_owned(self) -> R {
        match self {
            Ev::Ref(r) => r.clone(),
            Ev::Own(r) => r,
        }
    }
}

fn eval_prepared<'a, R: LocalRel>(p: &'a Prepared<R>, delta: &'a R) -> Result<Ev<'a, R>> {
    Ok(match p {
        Prepared::Delta => Ev::Ref(delta),
        Prepared::Const(r) => Ev::Ref(r),
        Prepared::Filter(ps, t) => Ev::Own(eval_prepared(t, delta)?.get().filter_preds(ps)?),
        Prepared::Rename(a, b, t) => Ev::Own(eval_prepared(t, delta)?.get().rename_col(*a, *b)),
        Prepared::AntiProject(cs, t) => {
            Ev::Own(eval_prepared(t, delta)?.get().antiproject_cols(cs))
        }
        Prepared::Join(a, b) => {
            let ea = eval_prepared(a, delta)?;
            let eb = eval_prepared(b, delta)?;
            Ev::Own(ea.get().join_with(eb.get()))
        }
        Prepared::Antijoin(a, b) => {
            let ea = eval_prepared(a, delta)?;
            let eb = eval_prepared(b, delta)?;
            Ev::Own(ea.get().antijoin_with(eb.get()))
        }
        Prepared::Union(a, b) => {
            let ea = eval_prepared(a, delta)?;
            let eb = eval_prepared(b, delta)?;
            if ea.get().is_empty() {
                eb
            } else if eb.get().is_empty() {
                ea
            } else {
                Ev::Own(ea.get().union_with(eb.get()))
            }
        }
        Prepared::JoinIdx(t, idx) => {
            let ev = eval_prepared(t, delta)?;
            let input = ev.get();
            let stats = kernel_stats();
            stats.record_join_probes(input.len() as u64);
            let mut rows = Vec::new();
            if !idx.is_empty() && !input.is_empty() {
                rows.reserve(input.len());
                for prow in input.iter_rows() {
                    idx.probe(prow, |row| rows.push(row));
                }
            }
            stats.record_rows_allocated(rows.len() as u64);
            Ev::Own(R::from_row_vec(idx.out_schema().clone(), rows))
        }
        Prepared::AntijoinIdx(t, idx, schema) => {
            let ev = eval_prepared(t, delta)?;
            let input = ev.get();
            let stats = kernel_stats();
            stats.record_antijoin_probes(input.len() as u64);
            let mut rows = Vec::with_capacity(input.len());
            for prow in input.iter_rows() {
                if !idx.contains(prow) {
                    rows.push(prow.clone());
                }
            }
            stats.record_rows_allocated(rows.len() as u64);
            Ev::Own(R::from_row_vec(schema.clone(), rows))
        }
    })
}

/// Applies one prepared recursive branch to a delta, yielding an owned
/// result (used by `P_async` workers and the `P_gld` driver).
pub fn eval_branch<R: LocalRel>(p: &Prepared<R>, delta: &R) -> Result<R> {
    Ok(eval_prepared(p, delta)?.into_owned())
}

/// Runs a worker-local semi-naive fixpoint (Algorithm 1) over this
/// worker's `seed` with the given engine. Prepares the branches (constant
/// folding + index builds) once, then iterates.
pub fn local_fixpoint(
    seed: &Relation,
    recs: &[Term],
    x: Sym,
    engine: LocalEngine,
    budget: &Budget,
) -> Result<Relation> {
    match engine {
        LocalEngine::SetRdd => {
            let prepared: Vec<Prepared<Relation>> =
                recs.iter().map(|r| prepare(r, x, seed.schema())).collect::<Result<_>>()?;
            budget.charge_bytes(prepared.iter().map(|p| p.cached_bytes()).sum())?;
            local_fixpoint_prepared(seed, &prepared, budget)
        }
        LocalEngine::Sorted => {
            let prepared: Vec<Prepared<SortedRelation>> =
                recs.iter().map(|r| prepare(r, x, seed.schema())).collect::<Result<_>>()?;
            budget.charge_bytes(prepared.iter().map(|p| p.cached_bytes()).sum())?;
            local_fixpoint_prepared(seed, &prepared, budget)
        }
    }
}

/// One semi-naive superstep: applies every prepared branch to `delta`,
/// subtracts `acc`, charges the budget. Returns the next `(acc, delta)`
/// pair, or `None` when the fixpoint is reached.
fn local_superstep<R: LocalRel>(
    prepared: &[Prepared<R>],
    acc: &R,
    delta: &R,
    budget: &Budget,
) -> Result<Option<(R, R)>> {
    let stats = kernel_stats();
    let start = Instant::now();
    let mut new: Option<R> = None;
    for p in prepared {
        let produced = eval_prepared(p, delta)?;
        new = Some(match new {
            None => produced.into_owned(),
            Some(n) => n.union_with(produced.get()),
        });
    }
    let new = match new {
        None => {
            stats.record_eval_time(start.elapsed());
            return Ok(None); // no recursive branch
        }
        Some(n) => n.minus_with(acc),
    };
    stats.record_eval_time(start.elapsed());
    stats.record_iteration();
    budget.charge(new.len() as u64)?;
    budget.charge_bytes(rel_bytes(new.len() as u64, new.schema().arity()))?;
    if new.is_empty() {
        return Ok(None);
    }
    Ok(Some((acc.union_with(&new), new)))
}

/// Runs the semi-naive loop over already-prepared branches. Distributed
/// callers prepare once and share the branches (and their cached indexes)
/// across all workers of the fixpoint.
pub fn local_fixpoint_prepared<R: LocalRel>(
    seed: &Relation,
    prepared: &[Prepared<R>],
    budget: &Budget,
) -> Result<Relation> {
    local_fixpoint_prepared_from(seed, prepared, budget, None)
}

/// Like [`local_fixpoint_prepared`], but optionally starting from resumed
/// `(acc, delta)` state instead of the seed — the incremental view
/// maintenance path. The resumed accumulator already contains this
/// worker's seed share, so the seed is only used when no resume state is
/// given.
fn local_fixpoint_prepared_from<R: LocalRel>(
    seed: &Relation,
    prepared: &[Prepared<R>],
    budget: &Budget,
    initial: Option<(&Relation, &Relation)>,
) -> Result<Relation> {
    // Iteration-0 state is this worker's share of the accumulator: charge
    // it so a byte budget sees it, not just produced deltas.
    let (mut acc, mut delta) = match initial {
        Some((a, d)) => {
            budget.charge_bytes(rel_bytes((a.len() + d.len()) as u64, a.schema().arity()))?;
            (R::from_relation(a), R::from_relation(d))
        }
        None => {
            budget.charge_bytes(rel_bytes(seed.len() as u64, seed.schema().arity()))?;
            let acc = R::from_relation(seed);
            let delta = acc.clone();
            (acc, delta)
        }
    };
    while !delta.is_empty() {
        budget.check()?;
        match local_superstep(prepared, &acc, &delta, budget)? {
            None => break,
            Some((a, d)) => {
                acc = a;
                delta = d;
            }
        }
    }
    Ok(acc.into_relation())
}

/// Per-worker supervision context for the `P_plw` loops: budget, fault
/// plan, fault-site coordinates and the recovery/checkpoint policy.
pub struct LoopCtx<'a> {
    /// Shared row/deadline/cancellation budget.
    pub budget: &'a Budget,
    /// The fault plan injections are drawn from.
    pub fault: &'a FaultPlan,
    /// Fault site of this fixpoint (one per fixpoint, shared by all its
    /// workers; allocated driver-side so it is deterministic).
    pub site: u64,
    /// This worker's index.
    pub worker: usize,
    /// Retry/restore policy.
    pub recovery: RecoveryPolicy,
    /// Checkpoint the local `(acc, delta, iteration)` state every this many
    /// supersteps; `0` disables checkpointing.
    pub checkpoint_every: u64,
    /// Trace sink of the query, when it records events (`None` = off).
    /// Superstep events are only recorded at
    /// [`mura_obs::TraceLevel::Superstep`]; recovery events at any level.
    pub trace: Option<&'a TraceSink>,
    /// Fixpoint id carried by this loop's trace events.
    pub fixpoint: u32,
}

/// The supervised worker-local semi-naive loop: like
/// [`local_fixpoint_prepared`], plus per-iteration fault injection, panic
/// capture, local checkpoints every [`LoopCtx::checkpoint_every`]
/// supersteps, and restore/restart recovery when an iteration fails.
///
/// Iteration numbers start at 1, so in-loop injection rolls never collide
/// with the task-level roll (step 0) of the cluster supervisor. Failure
/// counts per iteration persist across restores, so an afflicted iteration
/// heals after [`crate::fault::FaultConfig::failures_per_site`] failures
/// and replays always make progress.
pub fn local_fixpoint_supervised<R: LocalRel>(
    seed: &Relation,
    prepared: &[Prepared<R>],
    ctx: &LoopCtx<'_>,
    initial: Option<(&Relation, &Relation)>,
) -> Result<Relation> {
    let steps = ctx.trace.filter(|t| t.superstep_enabled());
    if !ctx.fault.is_active() && ctx.checkpoint_every == 0 && steps.is_none() {
        return local_fixpoint_prepared_from(seed, prepared, ctx.budget, initial);
    }
    ctx.budget.charge_bytes(rel_bytes(seed.len() as u64, seed.schema().arity()))?;
    // Resumed loops start from maintained `(acc, delta)` state; a full
    // restart during recovery must reset to the same pair, not the seed.
    let init_state = || -> (R, R) {
        match initial {
            Some((a, d)) => (R::from_relation(a), R::from_relation(d)),
            None => {
                let acc = R::from_relation(seed);
                let delta = acc.clone();
                (acc, delta)
            }
        }
    };
    // One superstep event per iteration per worker. `P_plw` loops never
    // communicate, so the comm fields stay zero by construction — the
    // trace-level counterpart of the paper's claim. Kernel counters are
    // process-wide and racy across workers, so they are left zero here.
    let record_step = |iteration: u64, delta_rows: u64, t_us: u64, started: &Instant| {
        if let Some(sink) = steps {
            let mut ev = TraceEvent::new(EventKind::Superstep, ctx.fixpoint, PlanKind::Plw);
            ev.worker = ctx.worker as i32;
            ev.iteration = iteration;
            ev.delta_rows = delta_rows;
            ev.t_us = t_us;
            ev.dur_us = started.elapsed().as_micros() as u64;
            sink.record(ev);
        }
    };
    let (mut acc, mut delta) = init_state();
    let mut iter: u64 = 0;
    let mut ckpt: Option<(R, R, u64)> = None;
    let mut restores: u32 = 0;
    let mut fail_counts: HashMap<u64, u32> = HashMap::new();
    while !delta.is_empty() {
        // Fires between supersteps and after every restore, so a cancelled
        // or out-of-budget query stops recovering immediately.
        ctx.budget.check()?;
        let next = iter + 1;
        let attempt = *fail_counts.get(&next).unwrap_or(&0);
        if let Some(d) = ctx.fault.straggler_delay(ctx.site, ctx.worker, next, attempt) {
            std::thread::sleep(d);
        }
        let t_us = steps.map_or(0, |s| s.now_us());
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Option<(R, R)>> {
            ctx.fault.maybe_panic(ctx.site, ctx.worker, next, attempt);
            ctx.fault.maybe_transient(ctx.site, ctx.worker, next, attempt)?;
            ctx.fault.maybe_memory_pressure(ctx.site, ctx.worker, next, attempt)?;
            local_superstep(prepared, &acc, &delta, ctx.budget)
        }))
        .unwrap_or_else(|payload| {
            Err(MuraError::WorkerFailed {
                worker: ctx.worker,
                payload: crate::cluster::payload_text(payload.as_ref()),
            })
        });
        match outcome {
            Ok(None) => {
                record_step(next, 0, t_us, &started);
                break;
            }
            Ok(Some((a, d))) => {
                record_step(next, d.len() as u64, t_us, &started);
                acc = a;
                delta = d;
                iter = next;
                if ctx.checkpoint_every > 0 && iter.is_multiple_of(ctx.checkpoint_every) {
                    ckpt = Some((acc.clone(), delta.clone(), iter));
                    ctx.fault.record_checkpoint();
                }
            }
            Err(e) if e.is_retryable() => {
                ctx.fault.record_time_lost(started.elapsed());
                *fail_counts.entry(next).or_insert(0) += 1;
                if restores >= ctx.recovery.max_restores {
                    return Err(e);
                }
                restores += 1;
                let recovery = match &ckpt {
                    Some((a, d, i)) => {
                        ctx.fault.record_restore((a.len() + d.len()) as u64, iter - *i);
                        acc = a.clone();
                        delta = d.clone();
                        iter = *i;
                        RecoveryKind::Restore
                    }
                    None => {
                        ctx.fault.record_full_restart(seed.len() as u64);
                        let (a, d) = init_state();
                        acc = a;
                        delta = d;
                        iter = 0;
                        RecoveryKind::Restart
                    }
                };
                if let Some(sink) = ctx.trace {
                    let mut ev = TraceEvent::new(EventKind::Recovery, ctx.fixpoint, PlanKind::Plw);
                    ev.worker = ctx.worker as i32;
                    ev.iteration = iter;
                    ev.recovery = recovery;
                    ev.t_us = sink.now_us();
                    sink.record(ev);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(acc.into_relation())
}

/// Compiles a branch the way the pre-optimization kernel did: constants are
/// converted but never folded, and joins rebuild their hash tables every
/// iteration. Kept as a differential baseline for tests and benchmarks.
pub fn prepare_reference<R: LocalRel>(term: &Term, x: Sym) -> Result<Prepared<R>> {
    Ok(match term {
        Term::Var(v) if *v == x => Prepared::Delta,
        Term::Var(v) => {
            return Err(MuraError::Other(format!(
                "unhoisted variable {v} in local fixpoint branch"
            )))
        }
        Term::Cst(r) => Prepared::Const(R::from_relation(r)),
        Term::Filter(ps, t) => Prepared::Filter(ps.clone(), Box::new(prepare_reference(t, x)?)),
        Term::Rename(a, b, t) => Prepared::Rename(*a, *b, Box::new(prepare_reference(t, x)?)),
        Term::AntiProject(cs, t) => {
            Prepared::AntiProject(cs.clone(), Box::new(prepare_reference(t, x)?))
        }
        Term::Join(a, b) => {
            Prepared::Join(Box::new(prepare_reference(a, x)?), Box::new(prepare_reference(b, x)?))
        }
        Term::Antijoin(a, b) => Prepared::Antijoin(
            Box::new(prepare_reference(a, x)?),
            Box::new(prepare_reference(b, x)?),
        ),
        Term::Union(a, b) => {
            Prepared::Union(Box::new(prepare_reference(a, x)?), Box::new(prepare_reference(b, x)?))
        }
        Term::Fix(_, _) => {
            return Err(MuraError::Other(
                "nested fixpoint must be hoisted before local execution".into(),
            ))
        }
    })
}

fn eval_reference<R: LocalRel>(p: &Prepared<R>, delta: &R) -> Result<R> {
    Ok(match p {
        Prepared::Delta => delta.clone(),
        Prepared::Const(r) => r.clone(),
        Prepared::Filter(ps, t) => eval_reference(t, delta)?.filter_preds(ps)?,
        Prepared::Rename(a, b, t) => eval_reference(t, delta)?.rename_col(*a, *b),
        Prepared::AntiProject(cs, t) => eval_reference(t, delta)?.antiproject_cols(cs),
        Prepared::Join(a, b) => eval_reference(a, delta)?.join_with(&eval_reference(b, delta)?),
        Prepared::Antijoin(a, b) => {
            eval_reference(a, delta)?.antijoin_with(&eval_reference(b, delta)?)
        }
        Prepared::Union(a, b) => eval_reference(a, delta)?.union_with(&eval_reference(b, delta)?),
        Prepared::JoinIdx(..) | Prepared::AntijoinIdx(..) => {
            unreachable!("reference kernel is built by prepare_reference (no index nodes)")
        }
    })
}

/// The pre-optimization semi-naive loop: re-evaluates every constant
/// subtree and rebuilds every join table each iteration. Used only as the
/// baseline in differential tests and `BENCH_fixpoint.json`.
pub fn local_fixpoint_reference(
    seed: &Relation,
    recs: &[Term],
    x: Sym,
    engine: LocalEngine,
    budget: &Budget,
) -> Result<Relation> {
    match engine {
        LocalEngine::SetRdd => local_fixpoint_reference_typed::<Relation>(seed, recs, x, budget),
        LocalEngine::Sorted => {
            local_fixpoint_reference_typed::<SortedRelation>(seed, recs, x, budget)
        }
    }
}

fn local_fixpoint_reference_typed<R: LocalRel>(
    seed: &Relation,
    recs: &[Term],
    x: Sym,
    budget: &Budget,
) -> Result<Relation> {
    let prepared: Vec<Prepared<R>> =
        recs.iter().map(|r| prepare_reference(r, x)).collect::<Result<_>>()?;
    let mut acc = R::from_relation(seed);
    let mut delta = acc.clone();
    while !delta.is_empty() {
        budget.check()?;
        let mut new: Option<R> = None;
        for p in &prepared {
            let produced = eval_reference(p, &delta)?;
            new = Some(match new {
                None => produced,
                Some(n) => n.union_with(&produced),
            });
        }
        let new = match new {
            None => break, // no recursive branch
            Some(n) => n.minus_with(&acc),
        };
        budget.charge(new.len() as u64)?;
        budget.charge_bytes(rel_bytes(new.len() as u64, new.schema().arity()))?;
        if new.is_empty() {
            break;
        }
        acc = acc.union_with(&new);
        delta = new;
    }
    Ok(acc.into_relation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Database;

    fn setup() -> (Database, Relation, Vec<Term>, Sym) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e = Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 3), (3, 0), (7, 8)]);
        // Hoisted step: π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(Cst(E))).
        let step =
            Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
        (db, e, vec![step], x)
    }

    #[test]
    fn both_engines_agree_on_tc() {
        let (_db, e, recs, x) = setup();
        let budget = Budget::new(None, None);
        let hash = local_fixpoint(&e, &recs, x, LocalEngine::SetRdd, &budget).unwrap();
        let sorted = local_fixpoint(&e, &recs, x, LocalEngine::Sorted, &budget).unwrap();
        assert_eq!(hash.sorted_rows(), sorted.sorted_rows());
        // 4-cycle {0,1,2,3}: all 16 pairs, plus (7,8).
        assert_eq!(hash.len(), 17);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (_db, e, recs, x) = setup();
        let budget = Budget::new(Some(3), None);
        let err = local_fixpoint(&e, &recs, x, LocalEngine::SetRdd, &budget).unwrap_err();
        assert!(matches!(err, MuraError::ResourceExhausted { .. }));
    }

    #[test]
    fn unhoisted_variable_rejected() {
        let (mut db, e, _, x) = setup();
        let free = db.intern("FREE");
        let recs = vec![Term::var(x).join(Term::var(free))];
        let budget = Budget::new(None, None);
        assert!(local_fixpoint(&e, &recs, x, LocalEngine::SetRdd, &budget).is_err());
    }

    #[test]
    fn no_recursive_branch_returns_seed() {
        let (_db, e, _, x) = setup();
        let budget = Budget::new(None, None);
        let out = local_fixpoint(&e, &[], x, LocalEngine::SetRdd, &budget).unwrap();
        assert_eq!(out.sorted_rows(), e.sorted_rows());
    }

    #[test]
    fn filter_inside_branch() {
        let (mut db, e, _, x) = setup();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        // Step filtered to never extend (src of E = 100 doesn't exist).
        let step = Term::var(x)
            .rename(dst, m)
            .join(Term::cst(e.clone()).filter_eq(src, 100i64).rename(src, m))
            .antiproject(m);
        let budget = Budget::new(None, None);
        let out = local_fixpoint(&e, &[step], x, LocalEngine::Sorted, &budget).unwrap();
        assert_eq!(out.len(), e.len());
        let _ = dst;
    }
}
