//! Worker-local fixpoint execution for the `P_plw` plan.
//!
//! Each worker receives its share of the fixpoint's constant part plus
//! broadcast copies of every loop-invariant relation, and iterates the
//! recursive step locally — no cluster communication at all during the
//! recursion (the paper's key advantage of `P_plw` over `P_gld`).
//!
//! Two interchangeable local engines implement the iteration, mirroring the
//! paper's two `P_plw` implementations (§IV-B a):
//!
//! * [`LocalEngine::SetRdd`] — hash-set relations (BigDatalog's SetRDD
//!   style);
//! * [`LocalEngine::Sorted`] — sort-merge relations standing in for the
//!   per-worker PostgreSQL instances of `P_plw^pg`.

use crate::sorted::SortedRelation;
use mura_core::{CancellationToken, MuraError, Pred, Relation, Result, Schema, Sym, Term, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which local engine runs the per-worker loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalEngine {
    /// Hash-based sets (the paper's `P_plw^s`, the faster variant).
    #[default]
    SetRdd,
    /// Sort-merge engine (the paper's `P_plw^pg` stand-in).
    Sorted,
}

/// Shared row budget + deadline + cancellation, checked by every worker
/// loop. Models the paper's out-of-memory failures and timeouts, and gives
/// the serving layer a handle to stop a query between supersteps.
#[derive(Debug, Default)]
pub struct Budget {
    produced: AtomicU64,
    max_rows: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancellationToken>,
}

impl Budget {
    /// A budget with optional row cap and deadline.
    pub fn new(max_rows: Option<u64>, deadline: Option<Instant>) -> Self {
        Budget { produced: AtomicU64::new(0), max_rows, deadline, cancel: None }
    }

    /// Attaches a cancellation token, consulted by [`Budget::check`].
    pub fn with_cancel(mut self, cancel: Option<CancellationToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Charges `rows` produced rows; errors when over budget, past the
    /// deadline, or cancelled.
    pub fn charge(&self, rows: u64) -> Result<()> {
        let total = self.produced.fetch_add(rows, Ordering::Relaxed) + rows;
        if let Some(max) = self.max_rows {
            if total > max {
                return Err(MuraError::ResourceExhausted {
                    what: "materialized rows",
                    limit: max,
                    reached: total,
                });
            }
        }
        self.check()
    }

    /// Superstep preemption point: errors when past the engine deadline
    /// ([`MuraError::Timeout`]) or when the attached token was cancelled or
    /// its per-request deadline passed (`Cancelled` / `DeadlineExceeded`).
    /// Charges nothing, so loops can call it before producing any rows.
    pub fn check(&self) -> Result<()> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(MuraError::Timeout { millis: 0 });
            }
        }
        if let Some(c) = &self.cancel {
            c.check()?;
        }
        Ok(())
    }

    /// Rows charged so far.
    pub fn produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }
}

/// Local relation operations shared by the two engines.
pub trait LocalRel: Sized + Clone {
    fn from_relation(r: &Relation) -> Self;
    fn into_relation(self) -> Relation;
    fn schema(&self) -> &Schema;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool;
    fn filter_preds(&self, preds: &[Pred]) -> Result<Self>;
    fn rename_col(&self, from: Sym, to: Sym) -> Self;
    fn antiproject_cols(&self, cols: &[Sym]) -> Self;
    fn join_with(&self, other: &Self) -> Self;
    fn antijoin_with(&self, other: &Self) -> Self;
    fn union_with(&self, other: &Self) -> Self;
    fn minus_with(&self, other: &Self) -> Self;
}

/// Compiles predicates to a positional closure over a schema.
fn compile_preds(schema: &Schema, preds: &[Pred]) -> Result<Vec<CompiledPred>> {
    let mut out = Vec::with_capacity(preds.len());
    for p in preds {
        for c in p.columns() {
            if !schema.contains(c) {
                return Err(MuraError::UnknownColumn {
                    column: c,
                    schema: schema.clone(),
                    context: "local filter",
                });
            }
        }
        out.push(match p {
            Pred::Eq(c, v) => CompiledPred::Eq(schema.position(*c).unwrap(), *v),
            Pred::Neq(c, v) => CompiledPred::Neq(schema.position(*c).unwrap(), *v),
            Pred::EqCol(a, b) => {
                CompiledPred::EqCol(schema.position(*a).unwrap(), schema.position(*b).unwrap())
            }
        });
    }
    Ok(out)
}

enum CompiledPred {
    Eq(usize, Value),
    Neq(usize, Value),
    EqCol(usize, usize),
}

impl CompiledPred {
    fn matches(&self, row: &[Value]) -> bool {
        match self {
            CompiledPred::Eq(p, v) => row[*p] == *v,
            CompiledPred::Neq(p, v) => row[*p] != *v,
            CompiledPred::EqCol(a, b) => row[*a] == row[*b],
        }
    }
}

impl LocalRel for Relation {
    fn from_relation(r: &Relation) -> Self {
        r.clone()
    }
    fn into_relation(self) -> Relation {
        self
    }
    fn schema(&self) -> &Schema {
        Relation::schema(self)
    }
    fn len(&self) -> usize {
        Relation::len(self)
    }
    fn is_empty(&self) -> bool {
        Relation::is_empty(self)
    }
    fn filter_preds(&self, preds: &[Pred]) -> Result<Self> {
        let compiled = compile_preds(Relation::schema(self), preds)?;
        Ok(self.filter(|row| compiled.iter().all(|p| p.matches(row))))
    }
    fn rename_col(&self, from: Sym, to: Sym) -> Self {
        self.rename(from, to)
    }
    fn antiproject_cols(&self, cols: &[Sym]) -> Self {
        self.antiproject(cols)
    }
    fn join_with(&self, other: &Self) -> Self {
        self.join(other)
    }
    fn antijoin_with(&self, other: &Self) -> Self {
        self.antijoin(other)
    }
    fn union_with(&self, other: &Self) -> Self {
        self.union(other)
    }
    fn minus_with(&self, other: &Self) -> Self {
        self.minus(other)
    }
}

impl LocalRel for SortedRelation {
    fn from_relation(r: &Relation) -> Self {
        SortedRelation::from_relation(r)
    }
    fn into_relation(self) -> Relation {
        self.to_relation()
    }
    fn schema(&self) -> &Schema {
        SortedRelation::schema(self)
    }
    fn len(&self) -> usize {
        SortedRelation::len(self)
    }
    fn is_empty(&self) -> bool {
        SortedRelation::is_empty(self)
    }
    fn filter_preds(&self, preds: &[Pred]) -> Result<Self> {
        let compiled = compile_preds(SortedRelation::schema(self), preds)?;
        Ok(self.filter(|row| compiled.iter().all(|p| p.matches(row))))
    }
    fn rename_col(&self, from: Sym, to: Sym) -> Self {
        self.rename(from, to)
    }
    fn antiproject_cols(&self, cols: &[Sym]) -> Self {
        self.antiproject(cols)
    }
    fn join_with(&self, other: &Self) -> Self {
        self.join(other)
    }
    fn antijoin_with(&self, other: &Self) -> Self {
        self.antijoin(other)
    }
    fn union_with(&self, other: &Self) -> Self {
        self.union(other)
    }
    fn minus_with(&self, other: &Self) -> Self {
        self.minus(other)
    }
}

/// A recursive branch compiled for local execution: every leaf is either
/// the recursion variable (delta) or an already-materialized constant
/// (pre-converted to the engine's representation once, not per iteration).
pub enum Prepared<R> {
    Delta,
    Const(R),
    Filter(Vec<Pred>, Box<Prepared<R>>),
    Rename(Sym, Sym, Box<Prepared<R>>),
    AntiProject(Vec<Sym>, Box<Prepared<R>>),
    Join(Box<Prepared<R>>, Box<Prepared<R>>),
    Antijoin(Box<Prepared<R>>, Box<Prepared<R>>),
    Union(Box<Prepared<R>>, Box<Prepared<R>>),
}

/// Compiles a hoisted recursive branch (all `x`-free subterms are `Cst`).
pub fn prepare<R: LocalRel>(term: &Term, x: Sym) -> Result<Prepared<R>> {
    Ok(match term {
        Term::Var(v) if *v == x => Prepared::Delta,
        Term::Var(v) => {
            return Err(MuraError::Other(format!(
                "unhoisted variable {v} in local fixpoint branch"
            )))
        }
        Term::Cst(r) => Prepared::Const(R::from_relation(r)),
        Term::Filter(ps, t) => Prepared::Filter(ps.clone(), Box::new(prepare(t, x)?)),
        Term::Rename(a, b, t) => Prepared::Rename(*a, *b, Box::new(prepare(t, x)?)),
        Term::AntiProject(cs, t) => Prepared::AntiProject(cs.clone(), Box::new(prepare(t, x)?)),
        Term::Join(a, b) => Prepared::Join(Box::new(prepare(a, x)?), Box::new(prepare(b, x)?)),
        Term::Antijoin(a, b) => {
            Prepared::Antijoin(Box::new(prepare(a, x)?), Box::new(prepare(b, x)?))
        }
        Term::Union(a, b) => Prepared::Union(Box::new(prepare(a, x)?), Box::new(prepare(b, x)?)),
        Term::Fix(_, _) => {
            return Err(MuraError::Other(
                "nested fixpoint must be hoisted before local execution".into(),
            ))
        }
    })
}

fn eval_prepared<R: LocalRel>(p: &Prepared<R>, delta: &R) -> Result<R> {
    Ok(match p {
        Prepared::Delta => delta.clone(),
        Prepared::Const(r) => r.clone(),
        Prepared::Filter(ps, t) => eval_prepared(t, delta)?.filter_preds(ps)?,
        Prepared::Rename(a, b, t) => eval_prepared(t, delta)?.rename_col(*a, *b),
        Prepared::AntiProject(cs, t) => eval_prepared(t, delta)?.antiproject_cols(cs),
        Prepared::Join(a, b) => eval_prepared(a, delta)?.join_with(&eval_prepared(b, delta)?),
        Prepared::Antijoin(a, b) => {
            eval_prepared(a, delta)?.antijoin_with(&eval_prepared(b, delta)?)
        }
        Prepared::Union(a, b) => eval_prepared(a, delta)?.union_with(&eval_prepared(b, delta)?),
    })
}

/// Runs a worker-local semi-naive fixpoint (Algorithm 1) over this
/// worker's `seed` with the given engine.
pub fn local_fixpoint(
    seed: &Relation,
    recs: &[Term],
    x: Sym,
    engine: LocalEngine,
    budget: &Budget,
) -> Result<Relation> {
    match engine {
        LocalEngine::SetRdd => local_fixpoint_typed::<Relation>(seed, recs, x, budget),
        LocalEngine::Sorted => local_fixpoint_typed::<SortedRelation>(seed, recs, x, budget),
    }
}

fn local_fixpoint_typed<R: LocalRel>(
    seed: &Relation,
    recs: &[Term],
    x: Sym,
    budget: &Budget,
) -> Result<Relation> {
    let prepared: Vec<Prepared<R>> = recs.iter().map(|r| prepare(r, x)).collect::<Result<_>>()?;
    let mut acc = R::from_relation(seed);
    let mut delta = acc.clone();
    while !delta.is_empty() {
        budget.check()?;
        let mut new: Option<R> = None;
        for p in &prepared {
            let produced = eval_prepared(p, &delta)?;
            new = Some(match new {
                None => produced,
                Some(n) => n.union_with(&produced),
            });
        }
        let new = match new {
            None => break, // no recursive branch
            Some(n) => n.minus_with(&acc),
        };
        budget.charge(new.len() as u64)?;
        if new.is_empty() {
            break;
        }
        acc = acc.union_with(&new);
        delta = new;
    }
    Ok(acc.into_relation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Database;

    fn setup() -> (Database, Relation, Vec<Term>, Sym) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e = Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 3), (3, 0), (7, 8)]);
        // Hoisted step: π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(Cst(E))).
        let step =
            Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
        (db, e, vec![step], x)
    }

    #[test]
    fn both_engines_agree_on_tc() {
        let (_db, e, recs, x) = setup();
        let budget = Budget::new(None, None);
        let hash = local_fixpoint(&e, &recs, x, LocalEngine::SetRdd, &budget).unwrap();
        let sorted = local_fixpoint(&e, &recs, x, LocalEngine::Sorted, &budget).unwrap();
        assert_eq!(hash.sorted_rows(), sorted.sorted_rows());
        // 4-cycle {0,1,2,3}: all 16 pairs, plus (7,8).
        assert_eq!(hash.len(), 17);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (_db, e, recs, x) = setup();
        let budget = Budget::new(Some(3), None);
        let err = local_fixpoint(&e, &recs, x, LocalEngine::SetRdd, &budget).unwrap_err();
        assert!(matches!(err, MuraError::ResourceExhausted { .. }));
    }

    #[test]
    fn unhoisted_variable_rejected() {
        let (mut db, e, _, x) = setup();
        let free = db.intern("FREE");
        let recs = vec![Term::var(x).join(Term::var(free))];
        let budget = Budget::new(None, None);
        assert!(local_fixpoint(&e, &recs, x, LocalEngine::SetRdd, &budget).is_err());
    }

    #[test]
    fn no_recursive_branch_returns_seed() {
        let (_db, e, _, x) = setup();
        let budget = Budget::new(None, None);
        let out = local_fixpoint(&e, &[], x, LocalEngine::SetRdd, &budget).unwrap();
        assert_eq!(out.sorted_rows(), e.sorted_rows());
    }

    #[test]
    fn filter_inside_branch() {
        let (mut db, e, _, x) = setup();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        // Step filtered to never extend (src of E = 100 doesn't exist).
        let step = Term::var(x)
            .rename(dst, m)
            .join(Term::cst(e.clone()).filter_eq(src, 100i64).rename(src, m))
            .antiproject(m);
        let budget = Budget::new(None, None);
        let out = local_fixpoint(&e, &[step], x, LocalEngine::Sorted, &budget).unwrap();
        assert_eq!(out.len(), e.len());
        let _ = dst;
    }
}
