//! The `mura-worker` process: a data-exchange node of the multi-process
//! cluster backend ([`crate::proc::ProcCluster`]).
//!
//! A worker never decodes rows — exchange payloads are opaque byte blobs.
//! Its whole job is the data plane:
//!
//! * on [`Msg::Relay`], forward each `(to, payload)` bucket to the
//!   destination peer over a direct worker↔worker TCP connection
//!   ([`Msg::Deliver`]), buffering self-addressed buckets locally;
//! * on [`Msg::Deliver`] from a peer, buffer the bucket under its
//!   exchange id and wake any pending [`Msg::Take`];
//! * on [`Msg::Take`], block (bounded) until the expected number of
//!   buckets arrived, then hand them to the coordinator.
//!
//! The coordinator keeps computation (the fixpoint drivers run its task
//! threads unchanged); the workers make the *communication* real: every
//! exchanged partition genuinely crosses two sockets, so bytes-on-the-wire
//! accounting measures actual traffic.
//!
//! Liveness: the worker exits when its stdin reaches EOF (the coordinator
//! holds the write end, so coordinator death reaps the worker — no orphan
//! processes), or when it receives [`Msg::Exit`].

use crate::wire::{read_frame, write_frame, Msg, WireError};
use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Buffered exchange buckets awaiting a [`Msg::Take`]: `xid → [(from, payload)]`.
type Inbox = HashMap<u64, Vec<(u32, Vec<u8>)>>;

/// Shared state of one worker process.
#[derive(Debug, Default)]
struct WorkerState {
    /// This worker's index, set by [`Msg::Hello`].
    id: AtomicU32,
    /// Peer listen ports (index = worker id), refreshed by [`Msg::Peers`]
    /// after every respawn.
    peers: Mutex<Vec<u16>>,
    /// Cached outgoing peer connections, invalidated on [`Msg::Peers`].
    peer_conns: Mutex<HashMap<u32, TcpStream>>,
    /// Buffered exchange buckets: `xid → [(from, payload)]`.
    inbox: Mutex<Inbox>,
    /// Wakes [`Msg::Take`] waiters when a bucket arrives.
    arrived: Condvar,
}

impl WorkerState {
    fn buffer(&self, xid: u64, from: u32, payload: Vec<u8>) {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.entry(xid).or_default().push((from, payload));
        self.arrived.notify_all();
    }

    /// Sends `payload` to peer `to`, reconnecting once on a stale cached
    /// connection (the peer may have been respawned on a new port).
    fn deliver(&self, to: u32, msg: &Msg) -> Result<(), WireError> {
        let mut conns = self.peer_conns.lock().unwrap();
        if let Some(conn) = conns.get_mut(&to) {
            if write_frame(conn, msg).is_ok() {
                return Ok(());
            }
            conns.remove(&to);
        }
        let port = {
            let peers = self.peers.lock().unwrap();
            *peers.get(to as usize).ok_or(WireError::Malformed("unknown peer"))?
        };
        let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
        let mut conn = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        conn.set_nodelay(true).ok();
        conn.set_write_timeout(Some(Duration::from_secs(5))).ok();
        write_frame(&mut conn, msg)?;
        conns.insert(to, conn);
        Ok(())
    }
}

/// Serves one accepted connection until EOF. Any connection may carry any
/// message: the coordinator's control and heartbeat connections and peers'
/// `Deliver` streams all land here.
fn handle_conn(state: &Arc<WorkerState>, mut conn: TcpStream) {
    conn.set_nodelay(true).ok();
    loop {
        let msg = match read_frame(&mut conn) {
            Ok((msg, _)) => msg,
            Err(_) => return, // EOF or a bad frame: close this connection.
        };
        let reply = match msg {
            Msg::Hello { id, .. } => {
                state.id.store(id, Ordering::SeqCst);
                Some(Msg::Ok)
            }
            Msg::Peers(ports) => {
                *state.peers.lock().unwrap() = ports;
                // Ports may have changed (respawn): cached streams are stale.
                state.peer_conns.lock().unwrap().clear();
                Some(Msg::Ok)
            }
            Msg::Ping => Some(Msg::Pong),
            Msg::Relay { xid, watermark, entries } => {
                // Prune abandoned exchange attempts before buffering new ones.
                state.inbox.lock().unwrap().retain(|&k, _| k >= watermark);
                let me = state.id.load(Ordering::SeqCst);
                let mut failed: Option<String> = None;
                for (to, payload) in entries {
                    if to == me {
                        state.buffer(xid, me, payload);
                        continue;
                    }
                    let deliver = Msg::Deliver { xid, from: me, payload };
                    if let Err(e) = state.deliver(to, &deliver) {
                        failed = Some(format!("deliver to {to}: {e}"));
                        break;
                    }
                }
                Some(match failed {
                    None => Msg::Ok,
                    Some(e) => Msg::Err(e),
                })
            }
            Msg::Deliver { xid, from, payload } => {
                state.buffer(xid, from, payload);
                None // One-way: peers do not wait for acks.
            }
            Msg::Take { xid, expect, timeout_ms } => {
                let deadline = Instant::now() + Duration::from_millis(timeout_ms);
                let mut inbox = state.inbox.lock().unwrap();
                loop {
                    let have = inbox.get(&xid).map_or(0, |v| v.len());
                    if have >= expect as usize {
                        break;
                    }
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (guard, _) = state.arrived.wait_timeout(inbox, left).unwrap();
                    inbox = guard;
                }
                // Hand over whatever arrived; the coordinator checks the
                // count and retries the whole exchange (fresh xid) if short.
                Some(Msg::TakeReply(inbox.remove(&xid).unwrap_or_default()))
            }
            Msg::Bcast(_payload) => {
                // Broadcast replication traffic: the bytes crossed the wire
                // (that is what is being measured); the replica itself is
                // not consulted — computation stays coordinator-side.
                Some(Msg::Ok)
            }
            Msg::Cancel => {
                state.inbox.lock().unwrap().clear();
                state.arrived.notify_all();
                Some(Msg::Ok)
            }
            Msg::Exit => std::process::exit(0),
            // Replies arriving as requests: protocol error, drop the conn.
            Msg::Pong | Msg::Ok | Msg::Err(_) | Msg::TakeReply(_) => return,
        };
        if let Some(reply) = reply {
            if write_frame(&mut conn, &reply).is_err() {
                return;
            }
        }
    }
}

/// Runs a worker: binds a loopback listener, reports the port through
/// `on_port`, and serves connections until [`Msg::Exit`] (which exits the
/// process). Used by the `mura-worker` binary.
pub fn run_worker(on_port: impl FnOnce(u16)) -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    on_port(listener.local_addr()?.port());
    let state = Arc::new(WorkerState::default());
    for conn in listener.incoming() {
        let Ok(conn) = conn else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_conn(&state, conn));
    }
    Ok(())
}

/// Exits the process when stdin reaches EOF: the coordinator holds the
/// write end of the pipe, so its death (clean or not) reaps this worker.
/// Spawned as a daemon thread by the `mura-worker` binary.
pub fn exit_on_stdin_eof() {
    std::thread::spawn(|| {
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => std::process::exit(0),
                Ok(_) => {}
            }
        }
    });
}
