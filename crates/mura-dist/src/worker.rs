//! The `mura-worker` process: a data-exchange node of the multi-process
//! cluster backend ([`crate::proc::ProcCluster`]).
//!
//! A worker never decodes rows — exchange payloads are opaque byte blobs.
//! Its whole job is the data plane:
//!
//! * on [`Msg::Relay`], forward each `(to, payload)` bucket to the
//!   destination peer over a direct worker↔worker TCP connection
//!   ([`Msg::Deliver`]), buffering self-addressed buckets locally;
//! * on [`Msg::Deliver`] from a peer, buffer the bucket under its
//!   exchange id and wake any pending [`Msg::Take`];
//! * on [`Msg::Take`], block (bounded) until the expected number of
//!   buckets arrived, then hand them to the coordinator.
//!
//! The coordinator keeps computation (the fixpoint drivers run its task
//! threads unchanged); the workers make the *communication* real: every
//! exchanged partition genuinely crosses two sockets, so bytes-on-the-wire
//! accounting measures actual traffic.
//!
//! Telemetry: each worker is a first-class trace source. Data-plane frames
//! carry a [`TraceCtx`]; at `TraceCtx::level >= 2` the worker records a
//! [`WorkerSpan`] per relay/deliver/take/broadcast into a bounded
//! drop-oldest ring, timestamped on its own monotonic clock. Per-opcode
//! frame counters run unconditionally. [`Msg::TraceFlush`] drains the ring
//! (and the counter deltas) back to the coordinator as a
//! [`Msg::TraceBatch`]; the coordinator re-bases the timestamps onto its
//! clock using the heartbeat RTT-midpoint offset estimate.
//!
//! Liveness: the worker exits when its stdin reaches EOF (the coordinator
//! holds the write end, so coordinator death reaps the worker — no orphan
//! processes), or when it receives [`Msg::Exit`].

use crate::wire::{
    read_frame, write_frame, Msg, TraceCtx, WireError, WorkerSpan, SPAN_BCAST, SPAN_DELIVER,
    SPAN_RELAY, SPAN_TAKE,
};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Buffered exchange buckets awaiting a [`Msg::Take`]: `xid → [(from, payload)]`.
type Inbox = HashMap<u64, Vec<(u32, Vec<u8>)>>;

/// Cap on the worker-side span ring. A long fixpoint at
/// `TraceLevel::Superstep` keeps producing spans between flushes; beyond
/// this many the oldest are evicted (counted, surfaced in the merge as
/// `dropped_events`) rather than growing without bound.
pub const WORKER_SPAN_CAPACITY: usize = 8192;

/// Shared state of one worker process.
#[derive(Debug)]
struct WorkerState {
    /// This worker's index, set by [`Msg::Hello`].
    id: AtomicU32,
    /// Peer listen ports (index = worker id), refreshed by [`Msg::Peers`]
    /// after every respawn.
    peers: Mutex<Vec<u16>>,
    /// Cached outgoing peer connections, invalidated on [`Msg::Peers`].
    peer_conns: Mutex<HashMap<u32, TcpStream>>,
    /// Buffered exchange buckets: `xid → [(from, payload)]`.
    inbox: Mutex<Inbox>,
    /// Wakes [`Msg::Take`] waiters when a bucket arrives.
    arrived: Condvar,
    /// Zero point of this worker's monotonic clock (process start).
    epoch: Instant,
    /// Bounded drop-oldest ring of recorded spans awaiting a flush.
    spans: Mutex<VecDeque<WorkerSpan>>,
    /// Spans evicted from the ring since the last flush.
    span_dropped: AtomicU64,
    /// Per-opcode data-plane frame counters since the last flush.
    relays: AtomicU64,
    delivers: AtomicU64,
    takes: AtomicU64,
    bcasts: AtomicU64,
}

impl WorkerState {
    fn new() -> Self {
        WorkerState {
            id: AtomicU32::new(0),
            peers: Mutex::new(Vec::new()),
            peer_conns: Mutex::new(HashMap::new()),
            inbox: Mutex::new(Inbox::new()),
            arrived: Condvar::new(),
            epoch: Instant::now(),
            spans: Mutex::new(VecDeque::new()),
            span_dropped: AtomicU64::new(0),
            relays: AtomicU64::new(0),
            delivers: AtomicU64::new(0),
            takes: AtomicU64::new(0),
            bcasts: AtomicU64::new(0),
        }
    }

    /// µs since process start on this worker's monotonic clock — the
    /// timescale of every span and of the [`Msg::Pong`] heartbeat reply.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a span if the propagated context asks for superstep-level
    /// tracing. The ring is bounded: at capacity the oldest span is
    /// evicted and counted.
    fn record_span(&self, kind: u8, ctx: TraceCtx, xid: u64, bytes: u64, t_us: u64, dur_us: u64) {
        if ctx.level < 2 || ctx.trace_id == 0 {
            return;
        }
        let span = WorkerSpan { kind, ctx, xid, bytes, t_us, dur_us };
        let mut ring = self.spans.lock().unwrap();
        if ring.len() >= WORKER_SPAN_CAPACITY {
            ring.pop_front();
            self.span_dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Drains spans of `trace_id` (0 = everything) plus the frame-counter
    /// deltas into a [`Msg::TraceBatch`]. Counters are swap-to-zero so
    /// repeated per-fixpoint flushes accumulate correctly coordinator-side.
    fn flush_trace(&self, trace_id: u64) -> Msg {
        let drained: Vec<WorkerSpan> = {
            let mut ring = self.spans.lock().unwrap();
            if trace_id == 0 {
                ring.drain(..).collect()
            } else {
                let (matched, rest): (Vec<_>, Vec<_>) =
                    ring.drain(..).partition(|s| s.ctx.trace_id == trace_id);
                ring.extend(rest);
                matched
            }
        };
        Msg::TraceBatch {
            spans: drained,
            dropped: self.span_dropped.swap(0, Ordering::Relaxed),
            relays: self.relays.swap(0, Ordering::Relaxed),
            delivers: self.delivers.swap(0, Ordering::Relaxed),
            takes: self.takes.swap(0, Ordering::Relaxed),
            bcasts: self.bcasts.swap(0, Ordering::Relaxed),
        }
    }

    fn buffer(&self, xid: u64, from: u32, payload: Vec<u8>) {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.entry(xid).or_default().push((from, payload));
        self.arrived.notify_all();
    }

    /// Sends `payload` to peer `to`, reconnecting once on a stale cached
    /// connection (the peer may have been respawned on a new port).
    fn deliver(&self, to: u32, msg: &Msg) -> Result<(), WireError> {
        let mut conns = self.peer_conns.lock().unwrap();
        if let Some(conn) = conns.get_mut(&to) {
            if write_frame(conn, msg).is_ok() {
                return Ok(());
            }
            conns.remove(&to);
        }
        let port = {
            let peers = self.peers.lock().unwrap();
            *peers.get(to as usize).ok_or(WireError::Malformed("unknown peer"))?
        };
        let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
        let mut conn = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        conn.set_nodelay(true).ok();
        conn.set_write_timeout(Some(Duration::from_secs(5))).ok();
        write_frame(&mut conn, msg)?;
        conns.insert(to, conn);
        Ok(())
    }
}

/// Serves one accepted connection until EOF. Any connection may carry any
/// message: the coordinator's control and heartbeat connections and peers'
/// `Deliver` streams all land here.
fn handle_conn(state: &Arc<WorkerState>, mut conn: TcpStream) {
    conn.set_nodelay(true).ok();
    loop {
        let msg = match read_frame(&mut conn) {
            Ok((msg, _)) => msg,
            Err(_) => return, // EOF or a bad frame: close this connection.
        };
        let reply = match msg {
            Msg::Hello { id, .. } => {
                state.id.store(id, Ordering::SeqCst);
                Some(Msg::Ok)
            }
            Msg::Peers(ports) => {
                *state.peers.lock().unwrap() = ports;
                // Ports may have changed (respawn): cached streams are stale.
                state.peer_conns.lock().unwrap().clear();
                Some(Msg::Ok)
            }
            Msg::Ping => Some(Msg::Pong { t_us: state.now_us() }),
            Msg::Relay { xid, watermark, ctx, entries } => {
                state.relays.fetch_add(1, Ordering::Relaxed);
                let t0 = state.now_us();
                // Prune abandoned exchange attempts before buffering new ones.
                state.inbox.lock().unwrap().retain(|&k, _| k >= watermark);
                let me = state.id.load(Ordering::SeqCst);
                let mut failed: Option<String> = None;
                let mut bytes = 0u64;
                for (to, payload) in entries {
                    bytes += payload.len() as u64;
                    if to == me {
                        state.buffer(xid, me, payload);
                        continue;
                    }
                    // Propagate the trace context onto the forwarded frame:
                    // the receiving peer's span stays query-attributed.
                    let deliver = Msg::Deliver { xid, from: me, ctx, payload };
                    if let Err(e) = state.deliver(to, &deliver) {
                        failed = Some(format!("deliver to {to}: {e}"));
                        break;
                    }
                }
                state.record_span(SPAN_RELAY, ctx, xid, bytes, t0, state.now_us() - t0);
                Some(match failed {
                    None => Msg::Ok,
                    Some(e) => Msg::Err(e),
                })
            }
            Msg::Deliver { xid, from, ctx, payload } => {
                state.delivers.fetch_add(1, Ordering::Relaxed);
                state.record_span(SPAN_DELIVER, ctx, xid, payload.len() as u64, state.now_us(), 0);
                state.buffer(xid, from, payload);
                None // One-way: peers do not wait for acks.
            }
            Msg::Take { xid, expect, timeout_ms, ctx } => {
                state.takes.fetch_add(1, Ordering::Relaxed);
                let t0 = state.now_us();
                let deadline = Instant::now() + Duration::from_millis(timeout_ms);
                let mut inbox = state.inbox.lock().unwrap();
                loop {
                    let have = inbox.get(&xid).map_or(0, |v| v.len());
                    if have >= expect as usize {
                        break;
                    }
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (guard, _) = state.arrived.wait_timeout(inbox, left).unwrap();
                    inbox = guard;
                }
                // Hand over whatever arrived; the coordinator checks the
                // count and retries the whole exchange (fresh xid) if short.
                let buckets = inbox.remove(&xid).unwrap_or_default();
                drop(inbox);
                let bytes = buckets.iter().map(|(_, p)| p.len() as u64).sum();
                state.record_span(SPAN_TAKE, ctx, xid, bytes, t0, state.now_us() - t0);
                Some(Msg::TakeReply(buckets))
            }
            Msg::Bcast { ctx, payload } => {
                // Broadcast replication traffic: the bytes crossed the wire
                // (that is what is being measured); the replica itself is
                // not consulted — computation stays coordinator-side.
                state.bcasts.fetch_add(1, Ordering::Relaxed);
                state.record_span(SPAN_BCAST, ctx, 0, payload.len() as u64, state.now_us(), 0);
                Some(Msg::Ok)
            }
            Msg::TraceFlush { trace_id } => Some(state.flush_trace(trace_id)),
            Msg::Cancel => {
                state.inbox.lock().unwrap().clear();
                state.arrived.notify_all();
                Some(Msg::Ok)
            }
            Msg::Exit => std::process::exit(0),
            // Replies arriving as requests: protocol error, drop the conn.
            Msg::Pong { .. }
            | Msg::Ok
            | Msg::Err(_)
            | Msg::TakeReply(_)
            | Msg::TraceBatch { .. } => return,
        };
        if let Some(reply) = reply {
            if write_frame(&mut conn, &reply).is_err() {
                return;
            }
        }
    }
}

/// Runs a worker: binds a loopback listener, reports the port through
/// `on_port`, and serves connections until [`Msg::Exit`] (which exits the
/// process). Used by the `mura-worker` binary.
pub fn run_worker(on_port: impl FnOnce(u16)) -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    on_port(listener.local_addr()?.port());
    let state = Arc::new(WorkerState::new());
    for conn in listener.incoming() {
        let Ok(conn) = conn else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_conn(&state, conn));
    }
    Ok(())
}

/// Exits the process when stdin reaches EOF: the coordinator holds the
/// write end of the pipe, so its death (clean or not) reaps this worker.
/// Spawned as a daemon thread by the `mura-worker` binary.
pub fn exit_on_stdin_eof() {
    std::thread::spawn(|| {
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => std::process::exit(0),
                Ok(_) => {}
            }
        }
    });
}
