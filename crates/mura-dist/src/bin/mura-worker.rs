//! Worker process of the multi-process cluster backend.
//!
//! Spawned by [`mura_dist::proc::ProcCluster`]; binds an ephemeral
//! loopback port, announces it as `PORT <n>` on stdout, then serves the
//! wire protocol (see `mura_dist::wire`) until told to exit — or until
//! stdin reaches EOF, which means the coordinator died and this process
//! must not linger as an orphan.

use std::io::Write;

fn main() {
    mura_dist::worker::exit_on_stdin_eof();
    let result = mura_dist::worker::run_worker(|port| {
        let mut out = std::io::stdout();
        // The coordinator blocks on this line to learn the port.
        writeln!(out, "PORT {port}").expect("announce port");
        out.flush().expect("flush port announcement");
    });
    if let Err(e) = result {
        eprintln!("mura-worker: {e}");
        std::process::exit(1);
    }
}
