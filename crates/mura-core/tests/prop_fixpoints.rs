//! Randomized tests of fixpoint evaluation and the stabilizer on random
//! graphs: the core obligations behind Propositions 1–3 of the paper.

use mura_core::analysis::{stable_columns, TypeEnv};
use mura_core::{eval, eval_naive_fixpoints, Database, Pred, Relation, Term, Value};

const CASES: u64 = 64;

/// Minimal SplitMix64 for seeded random inputs. `mura-core` sits below
/// `mura-datagen` in the crate graph, so it cannot borrow the shared PRNG
/// without a dependency cycle; this is a deliberate local copy.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

fn edges(rng: &mut Rng) -> Vec<(u64, u64)> {
    let len = 1 + rng.below(49) as usize;
    (0..len).map(|_| (rng.below(20), rng.below(20))).collect()
}

struct Fx {
    db: Database,
    src: mura_core::Sym,
    dst: mura_core::Sym,
    m: mura_core::Sym,
    x: mura_core::Sym,
    e: mura_core::Sym,
    s: mura_core::Sym,
}

fn setup(e_edges: &[(u64, u64)], s_edges: &[(u64, u64)]) -> Fx {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let m = db.intern("m");
    let x = db.intern("X");
    let e = db.insert_relation("E", Relation::from_pairs(src, dst, e_edges.iter().copied()));
    let s = db.insert_relation("S", Relation::from_pairs(src, dst, s_edges.iter().copied()));
    Fx { db, src, dst, m, x, e, s }
}

/// Right-linear closure μ(X = S ∪ X∘E).
fn rl(f: &Fx) -> Term {
    let step =
        Term::var(f.x).rename(f.dst, f.m).join(Term::var(f.e).rename(f.src, f.m)).antiproject(f.m);
    Term::var(f.s).union(step).fix(f.x)
}

/// Proposition 1 consequence: semi-naive (delta) iteration computes
/// the same fixpoint as naive reevaluation.
#[test]
fn semi_naive_equals_naive() {
    for case in 0..CASES {
        let mut rng = Rng(0x5e71 ^ case);
        let f = setup(&edges(&mut rng), &edges(&mut rng));
        let t = rl(&f);
        let a = eval(&t, &f.db).unwrap();
        let b = eval_naive_fixpoints(&t, &f.db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "case {case}");
    }
}

/// The stabilizer of a right-linear closure is exactly {src}.
#[test]
fn rl_stabilizer_is_src() {
    for case in 0..CASES {
        let mut rng = Rng(0x57ab ^ case);
        let f = setup(&edges(&mut rng), &edges(&mut rng));
        let Term::Fix(x, body) = rl(&f) else { unreachable!() };
        let mut env = TypeEnv::from_db(&f.db);
        let stable = stable_columns(x, &body, &mut env).unwrap();
        assert_eq!(stable, vec![f.src], "case {case}");
    }
}

/// Filter-pushing soundness (the rule behind class C3): filtering a
/// stable column before or after the fixpoint gives the same result.
#[test]
fn stable_filter_commutes_with_fixpoint() {
    for case in 0..CASES {
        let mut rng = Rng(0xf117 ^ case);
        let f = setup(&edges(&mut rng), &edges(&mut rng));
        let v = rng.below(20);
        let outside = rl(&f).filter(Pred::Eq(f.src, Value::node(v)));
        // Pushed: μ(X = σ(S) ∪ X∘E).
        let step = Term::var(f.x)
            .rename(f.dst, f.m)
            .join(Term::var(f.e).rename(f.src, f.m))
            .antiproject(f.m);
        let pushed = Term::var(f.s).filter(Pred::Eq(f.src, Value::node(v))).union(step).fix(f.x);
        let a = eval(&outside, &f.db).unwrap();
        let b = eval(&pushed, &f.db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "case {case}");
    }
}

/// Unstable-column filters do NOT commute in general — the evaluation
/// of the pushed form must be a subset (sanity check that the
/// stabilizer condition is doing real work).
#[test]
fn unstable_filter_pushed_is_subset() {
    for case in 0..CASES {
        let mut rng = Rng(0x5b5e7 ^ case);
        let f = setup(&edges(&mut rng), &edges(&mut rng));
        let v = rng.below(20);
        let outside = rl(&f).filter(Pred::Eq(f.dst, Value::node(v)));
        let step = Term::var(f.x)
            .rename(f.dst, f.m)
            .join(Term::var(f.e).rename(f.src, f.m))
            .antiproject(f.m);
        let pushed = Term::var(f.s).filter(Pred::Eq(f.dst, Value::node(v))).union(step).fix(f.x);
        let full = eval(&outside, &f.db).unwrap();
        let sub = eval(&pushed, &f.db).unwrap();
        // pushed starts from fewer seeds but then extends freely; filtering
        // ITS results by dst=v must be a subset of the correct answer...
        let sub_filtered =
            sub.filter(|row| row[sub.schema().position(f.dst).unwrap()] == Value::node(v));
        for row in sub_filtered.iter() {
            assert!(full.contains(row), "case {case}");
        }
    }
}

/// Proposition 3: μ(X = R₁ ∪ R₂ ∪ φ) = μ(X = R₁ ∪ φ) ∪ μ(X = R₂ ∪ φ).
#[test]
fn fixpoint_distributes_over_seed_union() {
    for case in 0..CASES {
        let mut rng = Rng(0xd157 ^ case);
        let e = edges(&mut rng);
        let s1 = edges(&mut rng);
        let s2 = edges(&mut rng);
        let f = setup(&e, &s1);
        let src = f.src;
        let dst = f.dst;
        let r2 = Relation::from_pairs(src, dst, s2.iter().copied());
        let step =
            |x, m| Term::var(x).rename(dst, m).join(Term::var(f.e).rename(src, m)).antiproject(m);
        let merged = Term::var(f.s).union(Term::cst(r2.clone())).union(step(f.x, f.m)).fix(f.x);
        let part1 = Term::var(f.s).union(step(f.x, f.m)).fix(f.x);
        let part2 = Term::cst(r2).union(step(f.x, f.m)).fix(f.x);
        let a = eval(&merged, &f.db).unwrap();
        let b = eval(&part1, &f.db).unwrap().union(&eval(&part2, &f.db).unwrap());
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "case {case}");
    }
}
