//! μ-RA → SQL translation (PostgreSQL dialect).
//!
//! The paper's `P_plw^pg` plan ships each worker's local fixpoint to a
//! per-worker PostgreSQL instance; its centralized baseline runs μ-RA on
//! PostgreSQL outright. This module is that translation layer: it renders
//! a μ-RA term as a SQL query, with fixpoints becoming `WITH RECURSIVE`
//! CTEs.
//!
//! PostgreSQL restricts a recursive CTE to reference itself **once** in
//! the recursive term, so:
//!
//! * single-recursive-branch fixpoints translate directly;
//! * two-branch *merged* fixpoints (`L* ∘ S ∘ R*`, produced by the
//!   merge-fixpoints rewrite) are re-nested as `LL(RL(S, R), L)` — two
//!   stacked CTEs, each singly recursive;
//! * anything else multi-branch is reported as unsupported.

use crate::analysis::{decompose_fixpoint, infer_schema, TypeEnv};
use crate::catalog::Dictionary;
use crate::error::{MuraError, Result};
use crate::term::{Pred, Term};
use crate::value::{Sym, Value};

/// SQL generation context.
pub struct SqlGen<'d> {
    dict: &'d Dictionary,
    env: TypeEnv,
    cte_counter: u32,
    /// Completed CTE definitions, in dependency order.
    ctes: Vec<(String, String)>,
}

/// Renders a closed μ-RA term as one SQL statement.
///
/// `env` must bind every free relation variable to its schema (e.g. via
/// [`TypeEnv::from_db`](crate::analysis::TypeEnv::from_db)).
pub fn to_sql(term: &Term, dict: &Dictionary, env: TypeEnv) -> Result<String> {
    let mut g = SqlGen { dict, env, cte_counter: 0, ctes: Vec::new() };
    let body = g.select_of(term)?;
    if g.ctes.is_empty() {
        return Ok(body);
    }
    let mut out = String::from("WITH RECURSIVE\n");
    let defs: Vec<String> =
        g.ctes.iter().map(|(name, def)| format!("{name} AS (\n{def}\n)")).collect();
    out.push_str(&defs.join(",\n"));
    out.push('\n');
    out.push_str(&body);
    Ok(out)
}

impl SqlGen<'_> {
    fn col(&self, c: Sym) -> String {
        // Quote: μ-RA column names may contain '?', '#' etc.
        format!("\"{}\"", self.dict.resolve(c).replace('"', "\"\""))
    }

    fn val(&self, v: &Value) -> String {
        match v {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("'{}'", self.dict.resolve(*s).replace('\'', "''")),
        }
    }

    fn fresh_cte(&mut self, hint: &str) -> String {
        self.cte_counter += 1;
        format!("{hint}_{}", self.cte_counter)
    }

    fn schema_cols(&mut self, t: &Term) -> Result<Vec<Sym>> {
        Ok(infer_schema(t, &mut self.env)?.columns().to_vec())
    }

    /// A full `SELECT …` statement for the term, with output columns named
    /// by the term's schema (sorted order).
    fn select_of(&mut self, t: &Term) -> Result<String> {
        let cols = self.schema_cols(t)?;
        self.select_with_cols(t, &cols)
    }

    fn select_with_cols(&mut self, t: &Term, out_cols: &[Sym]) -> Result<String> {
        match t {
            Term::Var(v) => {
                let table = self.dict.resolve(*v);
                let cols: Vec<String> = out_cols.iter().map(|c| self.col(*c)).collect();
                Ok(format!(
                    "SELECT DISTINCT {} FROM \"{}\"",
                    cols.join(", "),
                    table.replace('"', "\"\"")
                ))
            }
            Term::Cst(r) => {
                // Inline VALUES list.
                if r.is_empty() {
                    let cols: Vec<String> =
                        out_cols.iter().map(|c| format!("NULL AS {}", self.col(*c))).collect();
                    return Ok(format!("SELECT {} WHERE FALSE", cols.join(", ")));
                }
                let mut rows: Vec<String> = r
                    .sorted_rows()
                    .iter()
                    .map(|row| {
                        let vals: Vec<String> = row.iter().map(|v| self.val(v)).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                rows.sort();
                let cols: Vec<String> = out_cols.iter().map(|c| self.col(*c)).collect();
                Ok(format!("SELECT * FROM (VALUES {}) AS t({})", rows.join(", "), cols.join(", ")))
            }
            Term::Filter(preds, inner) => {
                let sub = self.subquery(inner)?;
                let conds: Vec<String> = preds
                    .iter()
                    .map(|p| match p {
                        Pred::Eq(c, v) => format!("{} = {}", self.col(*c), self.val(v)),
                        Pred::Neq(c, v) => format!("{} <> {}", self.col(*c), self.val(v)),
                        Pred::EqCol(a, b) => format!("{} = {}", self.col(*a), self.col(*b)),
                    })
                    .collect();
                let cols: Vec<String> = out_cols.iter().map(|c| self.col(*c)).collect();
                let alias = self.fresh_cte("t");
                Ok(format!(
                    "SELECT {} FROM {sub} AS {alias} WHERE {}",
                    cols.join(", "),
                    conds.join(" AND ")
                ))
            }
            Term::Rename(from, to, inner) => {
                let sub = self.subquery(inner)?;
                // Emit in out_cols order: UNION arms align positionally.
                let projected: Vec<String> = out_cols
                    .iter()
                    .map(|c| {
                        if c == to {
                            format!("{} AS {}", self.col(*from), self.col(*to))
                        } else {
                            self.col(*c)
                        }
                    })
                    .collect();
                let alias = self.fresh_cte("t");
                Ok(format!("SELECT {} FROM {sub} AS {alias}", projected.join(", ")))
            }
            Term::AntiProject(_, inner) => {
                let sub = self.subquery(inner)?;
                let cols: Vec<String> = out_cols.iter().map(|c| self.col(*c)).collect();
                let alias = self.fresh_cte("t");
                Ok(format!("SELECT DISTINCT {} FROM {sub} AS {alias}", cols.join(", ")))
            }
            Term::Join(a, b) => {
                let sa = self.schema_cols(a)?;
                let sb = self.schema_cols(b)?;
                let common: Vec<Sym> = sa.iter().copied().filter(|c| sb.contains(c)).collect();
                let qa = self.subquery(a)?;
                let qb = self.subquery(b)?;
                let select: Vec<String> = out_cols
                    .iter()
                    .map(|c| {
                        let side = if sa.contains(c) { "l" } else { "r" };
                        format!("{side}.{}", self.col(*c))
                    })
                    .collect();
                let using: Vec<String> =
                    common.iter().map(|c| format!("l.{0} = r.{0}", self.col(*c))).collect();
                let cond = if using.is_empty() { "TRUE".to_string() } else { using.join(" AND ") };
                Ok(format!("SELECT {} FROM {qa} AS l JOIN {qb} AS r ON {cond}", select.join(", ")))
            }
            Term::Antijoin(a, b) => {
                let sa = self.schema_cols(a)?;
                let sb = self.schema_cols(b)?;
                let common: Vec<Sym> = sa.iter().copied().filter(|c| sb.contains(c)).collect();
                let qa = self.subquery(a)?;
                let qb = self.subquery(b)?;
                let select: Vec<String> =
                    out_cols.iter().map(|c| format!("l.{}", self.col(*c))).collect();
                let cond: Vec<String> =
                    common.iter().map(|c| format!("l.{0} = r.{0}", self.col(*c))).collect();
                let cond = if cond.is_empty() { "TRUE".to_string() } else { cond.join(" AND ") };
                Ok(format!(
                    "SELECT {} FROM {qa} AS l WHERE NOT EXISTS (SELECT 1 FROM {qb} AS r WHERE {cond})",
                    select.join(", ")
                ))
            }
            Term::Union(a, b) => {
                let qa = self.select_with_cols(a, out_cols)?;
                let qb = self.select_with_cols(b, out_cols)?;
                Ok(format!("{qa}\nUNION\n{qb}"))
            }
            Term::Fix(x, body) => {
                let cte = self.fixpoint_cte(*x, body)?;
                let cols: Vec<String> = out_cols.iter().map(|c| self.col(*c)).collect();
                Ok(format!("SELECT {} FROM {cte}", cols.join(", ")))
            }
        }
    }

    /// A FROM-able rendering: a parenthesized subquery, or a CTE name for
    /// fixpoints. Callers must attach their own alias.
    fn subquery(&mut self, t: &Term) -> Result<String> {
        if let Term::Fix(x, body) = t {
            return self.fixpoint_cte(*x, body);
        }
        Ok(format!("({})", self.select_of(t)?))
    }

    /// Emits the CTE(s) for a fixpoint; returns the name to select from.
    fn fixpoint_cte(&mut self, x: Sym, body: &Term) -> Result<String> {
        let fix = Term::Fix(x, Box::new(body.clone()));
        let cols = self.schema_cols(&fix)?;
        let (consts, recs) = decompose_fixpoint(x, body)?;
        if recs.len() > 1 {
            return Err(MuraError::Other(
                "PostgreSQL allows one self-reference per recursive CTE; re-nest \
                 multi-branch fixpoints (e.g. L*∘S∘R* as LL(RL(S,R),L)) before \
                 SQL generation"
                    .into(),
            ));
        }
        let name = self.fresh_cte("fix");
        // Bind X to the CTE name while rendering the recursive branch.
        let schema = infer_schema(&fix, &mut self.env)?;
        let prev = self.env.bind(x, schema);
        // Temporarily register x's "table name" by mapping the variable's
        // dictionary entry — the recursive branch renders Var(x) as a table
        // scan of the CTE. We exploit that Var rendering uses dict.resolve;
        // so x must resolve to the CTE name. Instead of mutating the
        // dictionary we post-replace the placeholder.
        let placeholder = format!("\"{}\"", self.dict.resolve(x).replace('"', "\"\""));
        let mut seed_parts = Vec::new();
        for cpart in &consts {
            seed_parts.push(self.select_with_cols(cpart, &cols)?);
        }
        let rec_sql =
            if let Some(r) = recs.first() { Some(self.select_with_cols(r, &cols)?) } else { None };
        self.env.unbind(x, prev);
        let mut def = seed_parts.join("\nUNION\n");
        if let Some(rec) = rec_sql {
            let rec = rec.replace(&placeholder, &format!("\"{name}\""));
            def.push_str("\nUNION\n");
            def.push_str(&rec);
        }
        self.ctes.push((format!("\"{name}\""), def));
        Ok(format!("\"{name}\""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::relation::Relation;

    fn setup() -> (Database, Term) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let e = db.insert_relation("edge", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
        let m = db.intern("m");
        let x = db.intern("tcvar");
        let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
        let fix = Term::var(e).union(step).fix(x);
        (db, fix)
    }

    #[test]
    fn transitive_closure_becomes_recursive_cte() {
        let (db, fix) = setup();
        let env = TypeEnv::from_db(&db);
        let sql = to_sql(&fix, db.dict(), env).unwrap();
        assert!(sql.starts_with("WITH RECURSIVE"), "{sql}");
        assert!(sql.contains("\"fix_"), "{sql}");
        assert!(sql.contains("FROM \"edge\""), "{sql}");
        assert!(sql.contains("UNION"), "{sql}");
        // The recursive branch references the CTE, not the variable name.
        assert!(!sql.contains("\"tcvar\""), "{sql}");
    }

    #[test]
    fn filter_and_rename_render() {
        let (db, _) = setup();
        let e = db.dict().lookup("edge").unwrap();
        let src = db.dict().lookup("src").unwrap();
        let t = Term::var(e).filter_eq(src, 5i64);
        let sql = to_sql(&t, db.dict(), TypeEnv::from_db(&db)).unwrap();
        assert!(sql.contains("WHERE \"src\" = 5"), "{sql}");
        let m = db.dict().lookup("m").unwrap();
        let t2 = Term::var(e).rename(src, m);
        let sql2 = to_sql(&t2, db.dict(), TypeEnv::from_db(&db)).unwrap();
        assert!(sql2.contains("\"src\" AS \"m\""), "{sql2}");
    }

    #[test]
    fn antijoin_renders_not_exists() {
        let (db, _) = setup();
        let e = db.dict().lookup("edge").unwrap();
        let t = Term::var(e).antijoin(Term::var(e));
        let sql = to_sql(&t, db.dict(), TypeEnv::from_db(&db)).unwrap();
        assert!(sql.contains("NOT EXISTS"), "{sql}");
    }

    #[test]
    fn merged_fixpoint_rejected_with_hint() {
        // Two recursive branches: unsupported by a single CTE.
        let (mut db, _) = setup();
        let src = db.dict().lookup("src").unwrap();
        let dst = db.dict().lookup("dst").unwrap();
        let e = db.dict().lookup("edge").unwrap();
        let m1 = db.intern("m1");
        let m2 = db.intern("m2");
        let x = db.intern("X2");
        let append =
            Term::var(x).rename(dst, m1).join(Term::var(e).rename(src, m1)).antiproject(m1);
        let prepend =
            Term::var(x).rename(src, m2).join(Term::var(e).rename(dst, m2)).antiproject(m2);
        let fix = Term::var(e).union(append).union(prepend).fix(x);
        let err = to_sql(&fix, db.dict(), TypeEnv::from_db(&db)).unwrap_err();
        assert!(err.to_string().contains("re-nest"), "{err}");
    }

    #[test]
    fn constants_render_as_values() {
        let (db, _) = setup();
        let src = db.dict().lookup("src").unwrap();
        let dst = db.dict().lookup("dst").unwrap();
        let t = Term::cst(Relation::from_pairs(src, dst, [(7, 8)]));
        let sql = to_sql(&t, db.dict(), TypeEnv::from_db(&db)).unwrap();
        assert!(sql.contains("VALUES (7, 8)"), "{sql}");
    }

    #[test]
    fn quoting_is_safe() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let e = db.insert_relation("weird\"name", Relation::from_pairs(src, dst, [(1, 2)]));
        let odd = db.intern("it's");
        let t = Term::var(e).filter(crate::term::Pred::Eq(src, Value::Str(odd)));
        let sql = to_sql(&t, db.dict(), TypeEnv::from_db(&db)).unwrap();
        assert!(sql.contains("\"weird\"\"name\""), "{sql}");
        assert!(sql.contains("'it''s'"), "{sql}");
    }
}
