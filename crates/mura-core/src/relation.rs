//! Relations: sets of tuples over a schema.
//!
//! The μ-RA data model is set-based (no duplicates). A [`Relation`] stores a
//! [`Schema`] plus a hash set of rows whose fields are aligned with the
//! schema's sorted column order. All algebra operators (filter, rename,
//! antiprojection, natural join, antijoin, union, difference) are implemented
//! here on materialized relations; the distributed layer reuses these
//! per-partition.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::schema::Schema;
use crate::value::{Sym, Value};
use std::fmt;

/// A tuple. Fields are ordered by the owning relation's schema.
pub type Row = Box<[Value]>;

/// A set of rows with a fixed schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    schema: Schema,
    rows: FxHashSet<Row>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation { schema, rows: FxHashSet::default() }
    }

    /// Builds a relation from rows, deduplicating.
    ///
    /// # Panics
    /// Panics if a row's arity differs from the schema's.
    pub fn from_rows<I>(schema: Schema, rows: I) -> Self
    where
        I: IntoIterator<Item = Row>,
    {
        let mut r = Relation::new(schema);
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// Convenience: a binary relation over `(a, b)` from integer pairs.
    pub fn from_pairs(a: Sym, b: Sym, pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let schema = Schema::new(vec![a, b]);
        // Schema sorts columns; figure out which position a and b landed in.
        let pa = schema.position(a).unwrap();
        let mut rel = Relation::new(schema);
        for (x, y) in pairs {
            let mut row = vec![Value::node(0); 2];
            row[pa] = Value::node(x);
            row[1 - pa] = Value::node(y);
            rel.insert(row.into_boxed_slice());
        }
        rel
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row iterator (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows.contains(row)
    }

    /// Inserts a row; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the row arity differs from the schema arity.
    pub fn insert(&mut self, row: Row) -> bool {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} != schema arity {}",
            row.len(),
            self.schema.arity()
        );
        self.rows.insert(row)
    }

    /// Moves all rows of `other` into `self` (schemas must match).
    pub fn absorb(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "union of incompatible schemas");
        if self.rows.is_empty() {
            self.rows = other.rows;
        } else {
            self.rows.extend(other.rows);
        }
    }

    /// Consumes the relation, yielding its rows.
    pub fn into_rows(self) -> FxHashSet<Row> {
        self.rows
    }

    /// Rows kept only when `pred` holds.
    pub fn filter(&self, pred: impl Fn(&[Value]) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// ρ_from^to: renames a column. The schema stays sorted, so row fields are
    /// permuted accordingly.
    ///
    /// # Panics
    /// Panics if `from` is absent or `to` already exists.
    pub fn rename(&self, from: Sym, to: Sym) -> Relation {
        let new_schema = self
            .schema
            .rename(from, to)
            .unwrap_or_else(|| panic!("invalid rename {from:?} -> {to:?} on {}", self.schema));
        // For each position in the new schema, the source position in the old.
        let perm: Vec<usize> = new_schema
            .columns()
            .iter()
            .map(|&c| {
                let oc = if c == to { from } else { c };
                self.schema.position(oc).unwrap()
            })
            .collect();
        let identity = perm.iter().enumerate().all(|(i, &p)| i == p);
        let rows = if identity {
            self.rows.clone()
        } else {
            self.rows.iter().map(|r| perm.iter().map(|&p| r[p]).collect::<Row>()).collect()
        };
        Relation { schema: new_schema, rows }
    }

    /// π̃_cols: drops the given columns, deduplicating the result.
    ///
    /// # Panics
    /// Panics if a dropped column is absent.
    pub fn antiproject(&self, drop: &[Sym]) -> Relation {
        let new_schema = self
            .schema
            .antiproject(drop)
            .unwrap_or_else(|| panic!("invalid antiprojection of {drop:?} on {}", self.schema));
        let keep: Vec<usize> =
            new_schema.columns().iter().map(|&c| self.schema.position(c).unwrap()).collect();
        let rows = self.rows.iter().map(|r| keep.iter().map(|&p| r[p]).collect::<Row>()).collect();
        Relation { schema: new_schema, rows }
    }

    /// Natural join on all common columns. If there are no common columns the
    /// result is the cartesian product.
    pub fn join(&self, other: &Relation) -> Relation {
        join_plan(&self.schema, &other.schema).execute(self, other)
    }

    /// φ ▷ ψ: rows of `self` with **no** match in `other` on the common
    /// columns. With no common columns, returns `self` if `other` is empty
    /// and the empty relation otherwise (standard antijoin semantics).
    pub fn antijoin(&self, other: &Relation) -> Relation {
        let common = self.schema.intersection(&other.schema);
        if common.is_empty() {
            return if other.is_empty() {
                self.clone()
            } else {
                Relation::new(self.schema.clone())
            };
        }
        let my_pos: Vec<usize> = common.iter().map(|&c| self.schema.position(c).unwrap()).collect();
        let their_pos: Vec<usize> =
            common.iter().map(|&c| other.schema.position(c).unwrap()).collect();
        let keys: FxHashSet<Row> =
            other.rows.iter().map(|r| their_pos.iter().map(|&p| r[p]).collect::<Row>()).collect();
        let rows = self
            .rows
            .iter()
            .filter(|r| {
                let k: Row = my_pos.iter().map(|&p| r[p]).collect();
                !keys.contains(&k)
            })
            .cloned()
            .collect();
        Relation { schema: self.schema.clone(), rows }
    }

    /// Set union (schemas must match).
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "union of incompatible schemas");
        let (big, small) = if self.len() >= other.len() { (self, other) } else { (other, self) };
        let mut rows = big.rows.clone();
        rows.extend(small.rows.iter().cloned());
        Relation { schema: self.schema.clone(), rows }
    }

    /// Set difference `self \ other` (schemas must match).
    pub fn minus(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "difference of incompatible schemas");
        let rows = self.rows.iter().filter(|r| !other.rows.contains(*r)).cloned().collect();
        Relation { schema: self.schema.clone(), rows }
    }

    /// Sorted list of rows; useful for deterministic test assertions.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v: Vec<Row> = self.rows.iter().cloned().collect();
        v.sort();
        v
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema, self.len())?;
        for row in self.sorted_rows().iter().take(20) {
            write!(f, "  (")?;
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ")")?;
        }
        if self.len() > 20 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// Precomputed positional plan for a natural join between two schemas.
/// The distributed layer builds this once per join and reuses it per
/// partition.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Output schema (union of inputs).
    pub out_schema: Schema,
    /// Positions of the join key in the left input.
    pub left_key: Vec<usize>,
    /// Positions of the join key in the right input.
    pub right_key: Vec<usize>,
    /// For each output position: (from_left, source position).
    pub out_src: Vec<(bool, usize)>,
}

/// Computes the join plan between two schemas.
pub fn join_plan(left: &Schema, right: &Schema) -> JoinPlan {
    let common = left.intersection(right);
    let left_key = common.iter().map(|&c| left.position(c).unwrap()).collect();
    let right_key = common.iter().map(|&c| right.position(c).unwrap()).collect();
    let out_schema = left.union(right);
    let out_src = out_schema
        .columns()
        .iter()
        .map(|&c| match left.position(c) {
            Some(p) => (true, p),
            None => (false, right.position(c).unwrap()),
        })
        .collect();
    JoinPlan { out_schema, left_key, right_key, out_src }
}

impl JoinPlan {
    /// Hash join of two relations with this plan. Builds on the smaller side.
    pub fn execute(&self, left: &Relation, right: &Relation) -> Relation {
        let mut out = Relation::new(self.out_schema.clone());
        if left.is_empty() || right.is_empty() {
            return out;
        }
        // Build a hash table keyed by the join key on the smaller input.
        let build_left = left.len() <= right.len();
        let (build, probe) = if build_left { (left, right) } else { (right, left) };
        let (build_key, probe_key) = if build_left {
            (&self.left_key, &self.right_key)
        } else {
            (&self.right_key, &self.left_key)
        };
        let mut table: FxHashMap<Row, Vec<&Row>> = FxHashMap::default();
        for row in build.iter() {
            let k: Row = build_key.iter().map(|&p| row[p]).collect();
            table.entry(k).or_default().push(row);
        }
        for prow in probe.iter() {
            let k: Row = probe_key.iter().map(|&p| prow[p]).collect();
            if let Some(matches) = table.get(&k) {
                for brow in matches {
                    let (lrow, rrow): (&Row, &Row) =
                        if build_left { (brow, prow) } else { (prow, brow) };
                    let out_row: Row = self
                        .out_src
                        .iter()
                        .map(|&(from_left, p)| if from_left { lrow[p] } else { rrow[p] })
                        .collect();
                    out.insert(out_row);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Sym {
        Sym(i)
    }

    fn rel(cols: &[u32], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(cols.iter().map(|&c| sym(c)).collect());
        // Caller gives rows in the *given* column order; permute to schema order.
        let perm: Vec<usize> = schema
            .columns()
            .iter()
            .map(|c| cols.iter().position(|&x| sym(x) == *c).unwrap())
            .collect();
        Relation::from_rows(
            schema,
            rows.iter().map(|r| perm.iter().map(|&p| Value::Int(r[p])).collect::<Row>()),
        )
    }

    #[test]
    fn dedup_on_insert() {
        let r = rel(&[1, 2], &[&[1, 2], &[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn filter_keeps_matching() {
        let r = rel(&[1], &[&[1], &[2], &[3]]);
        let f = r.filter(|row| row[0].as_int().unwrap() >= 2);
        assert_eq!(f.len(), 2);
        assert!(f.contains(&[Value::Int(2)]));
    }

    #[test]
    fn rename_permutes_fields() {
        // schema (1,2); rename 1 -> 5 gives sorted schema (2,5): fields swap.
        let r = rel(&[1, 2], &[&[10, 20]]);
        let rn = r.rename(sym(1), sym(5));
        assert_eq!(rn.schema().columns(), &[sym(2), sym(5)]);
        assert!(rn.contains(&[Value::Int(20), Value::Int(10)]));
    }

    #[test]
    fn antiproject_dedups() {
        let r = rel(&[1, 2], &[&[1, 10], &[1, 20]]);
        let p = r.antiproject(&[sym(2)]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&[Value::Int(1)]));
    }

    #[test]
    fn natural_join_basic() {
        // R(a=1,b=2), S(b=2,c=3): join on b.
        let r = rel(&[1, 2], &[&[1, 10], &[2, 20]]);
        let s = rel(&[2, 3], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = r.join(&s);
        assert_eq!(j.schema().columns(), &[sym(1), sym(2), sym(3)]);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[Value::Int(1), Value::Int(10), Value::Int(100)]));
        assert!(j.contains(&[Value::Int(1), Value::Int(10), Value::Int(101)]));
    }

    #[test]
    fn join_no_common_is_product() {
        let r = rel(&[1], &[&[1], &[2]]);
        let s = rel(&[2], &[&[10], &[20]]);
        assert_eq!(r.join(&s).len(), 4);
    }

    #[test]
    fn join_same_schema_is_intersection() {
        let r = rel(&[1], &[&[1], &[2]]);
        let s = rel(&[1], &[&[2], &[3]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&[Value::Int(2)]));
    }

    #[test]
    fn antijoin_filters_matches() {
        let r = rel(&[1, 2], &[&[1, 10], &[2, 20]]);
        let s = rel(&[2], &[&[10]]);
        let a = r.antijoin(&s);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&[Value::Int(2), Value::Int(20)]));
    }

    #[test]
    fn antijoin_disjoint_schemas() {
        let r = rel(&[1], &[&[1]]);
        let empty = rel(&[9], &[]);
        let nonempty = rel(&[9], &[&[5]]);
        assert_eq!(r.antijoin(&empty).len(), 1);
        assert_eq!(r.antijoin(&nonempty).len(), 0);
    }

    #[test]
    fn union_minus() {
        let r = rel(&[1], &[&[1], &[2]]);
        let s = rel(&[1], &[&[2], &[3]]);
        assert_eq!(r.union(&s).len(), 3);
        let d = r.minus(&s);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[Value::Int(1)]));
    }

    #[test]
    fn from_pairs_respects_column_order() {
        // (b, a) given in that order: schema sorts to (a, b) but the pair
        // (x, y) must still mean b=x, a=y.
        let r = Relation::from_pairs(sym(2), sym(1), [(10, 20)]);
        assert_eq!(r.schema().columns(), &[sym(1), sym(2)]);
        assert!(r.contains(&[Value::Int(20), Value::Int(10)]));
    }
}
