//! Relations: sets of tuples over a schema.
//!
//! The μ-RA data model is set-based (no duplicates). A [`Relation`] stores a
//! [`Schema`] plus a hash set of rows whose fields are aligned with the
//! schema's sorted column order. All algebra operators (filter, rename,
//! antiprojection, natural join, antijoin, union, difference) are implemented
//! here on materialized relations; the distributed layer reuses these
//! per-partition.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::index::hash_key;
use crate::schema::Schema;
use crate::value::{Sym, Value};
use std::fmt;
use std::sync::Arc;

/// A tuple. Fields are ordered by the owning relation's schema.
pub type Row = Box<[Value]>;

/// A set of rows with a fixed schema.
///
/// Row storage is `Arc`-shared copy-on-write: cloning a relation, an
/// identity rename, or a union with an empty side are O(1) pointer copies.
/// Mutation goes through [`Arc::make_mut`], so the set is deep-copied only
/// when actually shared — the fixpoint kernels rely on this to keep
/// loop-invariant relations zero-copy across iterations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    schema: Schema,
    rows: Arc<FxHashSet<Row>>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation { schema, rows: Arc::new(FxHashSet::default()) }
    }

    /// Builds a relation from rows, deduplicating.
    ///
    /// # Panics
    /// Panics if a row's arity differs from the schema's.
    pub fn from_rows<I>(schema: Schema, rows: I) -> Self
    where
        I: IntoIterator<Item = Row>,
    {
        let it = rows.into_iter();
        let mut r = Relation::new(schema);
        r.reserve(it.size_hint().0);
        for row in it {
            r.insert(row);
        }
        r
    }

    /// Convenience: a binary relation over `(a, b)` from integer pairs.
    pub fn from_pairs(a: Sym, b: Sym, pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let schema = Schema::new(vec![a, b]);
        // Schema sorts columns; figure out which position a and b landed in.
        let pa = schema.position(a).unwrap();
        let it = pairs.into_iter();
        let mut rel = Relation::new(schema);
        rel.reserve(it.size_hint().0);
        for (x, y) in it {
            let (vx, vy) = (Value::node(x), Value::node(y));
            let row: Row = if pa == 0 { Box::new([vx, vy]) } else { Box::new([vy, vx]) };
            rel.insert(row);
        }
        rel
    }

    /// Reserves capacity for at least `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        if additional > 0 {
            Arc::make_mut(&mut self.rows).reserve(additional);
        }
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row iterator (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows.contains(row)
    }

    /// Inserts a row; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the row arity differs from the schema arity.
    pub fn insert(&mut self, row: Row) -> bool {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} != schema arity {}",
            row.len(),
            self.schema.arity()
        );
        Arc::make_mut(&mut self.rows).insert(row)
    }

    /// Removes a row; returns `true` if it was present. Like [`insert`],
    /// mutation goes through `Arc::make_mut`, so shared row sets are
    /// deep-copied only when a removal actually happens on a shared set.
    ///
    /// [`insert`]: Relation::insert
    pub fn remove(&mut self, row: &[Value]) -> bool {
        if !self.rows.contains(row) {
            return false;
        }
        Arc::make_mut(&mut self.rows).remove(row)
    }

    /// Moves all rows of `other` into `self` (schemas must match). When one
    /// side is empty this is an O(1) pointer move; otherwise the smaller row
    /// set is drained into the larger one.
    pub fn absorb(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "union of incompatible schemas");
        if other.rows.is_empty() {
            return;
        }
        if self.rows.is_empty() {
            self.rows = other.rows;
            return;
        }
        let mut other = other;
        if other.rows.len() > self.rows.len() {
            std::mem::swap(&mut self.rows, &mut other.rows);
        }
        let dst = Arc::make_mut(&mut self.rows);
        dst.reserve(other.rows.len());
        match Arc::try_unwrap(other.rows) {
            Ok(set) => dst.extend(set),
            Err(shared) => dst.extend(shared.iter().cloned()),
        }
    }

    /// Consumes the relation, yielding its rows (clones only if shared).
    pub fn into_rows(self) -> FxHashSet<Row> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Rows kept only when `pred` holds.
    pub fn filter(&self, pred: impl Fn(&[Value]) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: Arc::new(self.rows.iter().filter(|r| pred(r)).cloned().collect()),
        }
    }

    /// ρ_from^to: renames a column. The schema stays sorted, so row fields are
    /// permuted accordingly.
    ///
    /// # Panics
    /// Panics if `from` is absent or `to` already exists.
    pub fn rename(&self, from: Sym, to: Sym) -> Relation {
        let new_schema = self
            .schema
            .rename(from, to)
            .unwrap_or_else(|| panic!("invalid rename {from:?} -> {to:?} on {}", self.schema));
        // For each position in the new schema, the source position in the old.
        let perm: Vec<usize> = new_schema
            .columns()
            .iter()
            .map(|&c| {
                let oc = if c == to { from } else { c };
                self.schema.position(oc).unwrap()
            })
            .collect();
        let identity = perm.iter().enumerate().all(|(i, &p)| i == p);
        let rows = if identity {
            // Identity permutation: share the row set, O(1).
            Arc::clone(&self.rows)
        } else {
            let mut out = FxHashSet::default();
            out.reserve(self.rows.len());
            out.extend(self.rows.iter().map(|r| perm.iter().map(|&p| r[p]).collect::<Row>()));
            Arc::new(out)
        };
        Relation { schema: new_schema, rows }
    }

    /// π̃_cols: drops the given columns, deduplicating the result.
    ///
    /// # Panics
    /// Panics if a dropped column is absent.
    pub fn antiproject(&self, drop: &[Sym]) -> Relation {
        let new_schema = self
            .schema
            .antiproject(drop)
            .unwrap_or_else(|| panic!("invalid antiprojection of {drop:?} on {}", self.schema));
        if new_schema.arity() == self.schema.arity() {
            // Nothing actually dropped: share the row set, O(1).
            return Relation { schema: new_schema, rows: Arc::clone(&self.rows) };
        }
        let keep: Vec<usize> =
            new_schema.columns().iter().map(|&c| self.schema.position(c).unwrap()).collect();
        let mut rows = FxHashSet::default();
        rows.reserve(self.rows.len());
        rows.extend(self.rows.iter().map(|r| keep.iter().map(|&p| r[p]).collect::<Row>()));
        Relation { schema: new_schema, rows: Arc::new(rows) }
    }

    /// Natural join on all common columns. If there are no common columns the
    /// result is the cartesian product.
    pub fn join(&self, other: &Relation) -> Relation {
        join_plan(&self.schema, &other.schema).execute(self, other)
    }

    /// φ ▷ ψ: rows of `self` with **no** match in `other` on the common
    /// columns. With no common columns, returns `self` if `other` is empty
    /// and the empty relation otherwise (standard antijoin semantics).
    pub fn antijoin(&self, other: &Relation) -> Relation {
        let common = self.schema.intersection(&other.schema);
        if common.is_empty() {
            return if other.is_empty() {
                self.clone()
            } else {
                Relation::new(self.schema.clone())
            };
        }
        if other.is_empty() {
            return self.clone();
        }
        let my_pos: Vec<usize> = common.iter().map(|&c| self.schema.position(c).unwrap()).collect();
        let their_pos: Vec<usize> =
            common.iter().map(|&c| other.schema.position(c).unwrap()).collect();
        // Bucket the right side by key hash; probe without building key rows.
        let mut keys: FxHashMap<u64, Vec<&Row>> = FxHashMap::default();
        for r in other.rows.iter() {
            keys.entry(hash_key(r, &their_pos)).or_default().push(r);
        }
        let rows = self
            .rows
            .iter()
            .filter(|r| {
                keys.get(&hash_key(r, &my_pos)).is_none_or(|bucket| {
                    !bucket
                        .iter()
                        .any(|o| my_pos.iter().zip(&their_pos).all(|(&mp, &tp)| r[mp] == o[tp]))
                })
            })
            .cloned()
            .collect();
        Relation { schema: self.schema.clone(), rows: Arc::new(rows) }
    }

    /// Set union (schemas must match). O(1) when either side is empty.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "union of incompatible schemas");
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let (big, small) = if self.len() >= other.len() { (self, other) } else { (other, self) };
        let mut rows = (*big.rows).clone();
        rows.reserve(small.len());
        rows.extend(small.rows.iter().cloned());
        Relation { schema: self.schema.clone(), rows: Arc::new(rows) }
    }

    /// Set difference `self \ other` (schemas must match). O(1) when `other`
    /// is empty.
    pub fn minus(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "difference of incompatible schemas");
        if other.is_empty() || self.is_empty() {
            return self.clone();
        }
        let rows = self.rows.iter().filter(|r| !other.rows.contains(*r)).cloned().collect();
        Relation { schema: self.schema.clone(), rows: Arc::new(rows) }
    }

    /// Sorted list of rows; useful for deterministic test assertions.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v: Vec<Row> = self.rows.iter().cloned().collect();
        v.sort();
        v
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema, self.len())?;
        for row in self.sorted_rows().iter().take(20) {
            write!(f, "  (")?;
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ")")?;
        }
        if self.len() > 20 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// Precomputed positional plan for a natural join between two schemas.
/// The distributed layer builds this once per join and reuses it per
/// partition.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Output schema (union of inputs).
    pub out_schema: Schema,
    /// Positions of the join key in the left input.
    pub left_key: Vec<usize>,
    /// Positions of the join key in the right input.
    pub right_key: Vec<usize>,
    /// For each output position: (from_left, source position).
    pub out_src: Vec<(bool, usize)>,
}

/// Computes the join plan between two schemas.
pub fn join_plan(left: &Schema, right: &Schema) -> JoinPlan {
    let common = left.intersection(right);
    let left_key = common.iter().map(|&c| left.position(c).unwrap()).collect();
    let right_key = common.iter().map(|&c| right.position(c).unwrap()).collect();
    let out_schema = left.union(right);
    let out_src = out_schema
        .columns()
        .iter()
        .map(|&c| match left.position(c) {
            Some(p) => (true, p),
            None => (false, right.position(c).unwrap()),
        })
        .collect();
    JoinPlan { out_schema, left_key, right_key, out_src }
}

impl JoinPlan {
    /// Hash join of two relations with this plan. Builds on the smaller
    /// side. The table is keyed by a 64-bit hash of the join-key positions
    /// (no boxed key rows on either build or probe path); bucket entries are
    /// verified by positional equality.
    pub fn execute(&self, left: &Relation, right: &Relation) -> Relation {
        let mut out = Relation::new(self.out_schema.clone());
        if left.is_empty() || right.is_empty() {
            return out;
        }
        // Build a hash table keyed by the join key on the smaller input.
        let build_left = left.len() <= right.len();
        let (build, probe) = if build_left { (left, right) } else { (right, left) };
        let (build_key, probe_key) = if build_left {
            (&self.left_key, &self.right_key)
        } else {
            (&self.right_key, &self.left_key)
        };
        let mut table: FxHashMap<u64, Vec<&Row>> = FxHashMap::default();
        table.reserve(build.len());
        for row in build.iter() {
            table.entry(hash_key(row, build_key)).or_default().push(row);
        }
        out.reserve(probe.len());
        for prow in probe.iter() {
            let Some(matches) = table.get(&hash_key(prow, probe_key)) else {
                continue;
            };
            for brow in matches {
                if !probe_key.iter().zip(build_key).all(|(&pp, &bp)| prow[pp] == brow[bp]) {
                    continue;
                }
                let (lrow, rrow): (&Row, &Row) =
                    if build_left { (brow, prow) } else { (prow, brow) };
                let out_row: Row = self
                    .out_src
                    .iter()
                    .map(|&(from_left, p)| if from_left { lrow[p] } else { rrow[p] })
                    .collect();
                out.insert(out_row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Sym {
        Sym(i)
    }

    fn rel(cols: &[u32], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(cols.iter().map(|&c| sym(c)).collect());
        // Caller gives rows in the *given* column order; permute to schema order.
        let perm: Vec<usize> = schema
            .columns()
            .iter()
            .map(|c| cols.iter().position(|&x| sym(x) == *c).unwrap())
            .collect();
        Relation::from_rows(
            schema,
            rows.iter().map(|r| perm.iter().map(|&p| Value::Int(r[p])).collect::<Row>()),
        )
    }

    #[test]
    fn dedup_on_insert() {
        let r = rel(&[1, 2], &[&[1, 2], &[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn filter_keeps_matching() {
        let r = rel(&[1], &[&[1], &[2], &[3]]);
        let f = r.filter(|row| row[0].as_int().unwrap() >= 2);
        assert_eq!(f.len(), 2);
        assert!(f.contains(&[Value::Int(2)]));
    }

    #[test]
    fn rename_permutes_fields() {
        // schema (1,2); rename 1 -> 5 gives sorted schema (2,5): fields swap.
        let r = rel(&[1, 2], &[&[10, 20]]);
        let rn = r.rename(sym(1), sym(5));
        assert_eq!(rn.schema().columns(), &[sym(2), sym(5)]);
        assert!(rn.contains(&[Value::Int(20), Value::Int(10)]));
    }

    #[test]
    fn antiproject_dedups() {
        let r = rel(&[1, 2], &[&[1, 10], &[1, 20]]);
        let p = r.antiproject(&[sym(2)]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&[Value::Int(1)]));
    }

    #[test]
    fn natural_join_basic() {
        // R(a=1,b=2), S(b=2,c=3): join on b.
        let r = rel(&[1, 2], &[&[1, 10], &[2, 20]]);
        let s = rel(&[2, 3], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = r.join(&s);
        assert_eq!(j.schema().columns(), &[sym(1), sym(2), sym(3)]);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[Value::Int(1), Value::Int(10), Value::Int(100)]));
        assert!(j.contains(&[Value::Int(1), Value::Int(10), Value::Int(101)]));
    }

    #[test]
    fn join_no_common_is_product() {
        let r = rel(&[1], &[&[1], &[2]]);
        let s = rel(&[2], &[&[10], &[20]]);
        assert_eq!(r.join(&s).len(), 4);
    }

    #[test]
    fn join_same_schema_is_intersection() {
        let r = rel(&[1], &[&[1], &[2]]);
        let s = rel(&[1], &[&[2], &[3]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&[Value::Int(2)]));
    }

    #[test]
    fn antijoin_filters_matches() {
        let r = rel(&[1, 2], &[&[1, 10], &[2, 20]]);
        let s = rel(&[2], &[&[10]]);
        let a = r.antijoin(&s);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&[Value::Int(2), Value::Int(20)]));
    }

    #[test]
    fn antijoin_disjoint_schemas() {
        let r = rel(&[1], &[&[1]]);
        let empty = rel(&[9], &[]);
        let nonempty = rel(&[9], &[&[5]]);
        assert_eq!(r.antijoin(&empty).len(), 1);
        assert_eq!(r.antijoin(&nonempty).len(), 0);
    }

    #[test]
    fn union_minus() {
        let r = rel(&[1], &[&[1], &[2]]);
        let s = rel(&[1], &[&[2], &[3]]);
        assert_eq!(r.union(&s).len(), 3);
        let d = r.minus(&s);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[Value::Int(1)]));
    }

    #[test]
    fn from_pairs_respects_column_order() {
        // (b, a) given in that order: schema sorts to (a, b) but the pair
        // (x, y) must still mean b=x, a=y.
        let r = Relation::from_pairs(sym(2), sym(1), [(10, 20)]);
        assert_eq!(r.schema().columns(), &[sym(1), sym(2)]);
        assert!(r.contains(&[Value::Int(20), Value::Int(10)]));
    }
}
