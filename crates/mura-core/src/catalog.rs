//! String interning and the database catalog.

use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::value::Sym;

/// Interns strings to [`Sym`]s and resolves them back.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    map: FxHashMap<Box<str>, Sym>,
    names: Vec<Box<str>>,
    fresh_counter: u32,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Interns `s`, returning its symbol (stable across calls).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(s.into());
        self.map.insert(s.into(), sym);
        sym
    }

    /// Looks up an already-interned string.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol to its string.
    ///
    /// # Panics
    /// Panics if the symbol comes from another dictionary.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interned names in symbol order (`Sym(i)` is the `i`-th name). A
    /// dictionary rebuilt by interning these names in order resolves every
    /// existing symbol identically — the basis of snapshot restore.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|n| n.as_ref())
    }

    /// Current fresh-name counter. Durability snapshots persist it so a
    /// restored dictionary generates the same fresh names the original
    /// would have.
    pub fn fresh_counter(&self) -> u32 {
        self.fresh_counter
    }

    /// Restores the fresh-name counter (see [`Dictionary::fresh_counter`]).
    /// Safe at any value: [`Dictionary::fresh`] skips names that are
    /// already interned.
    pub fn set_fresh_counter(&mut self, c: u32) {
        self.fresh_counter = c;
    }

    /// Interns a globally fresh symbol with the given prefix — used for
    /// fixpoint variables and intermediate column names that must not
    /// collide with anything user-visible.
    pub fn fresh(&mut self, prefix: &str) -> Sym {
        loop {
            self.fresh_counter += 1;
            let name = format!("{prefix}#{}", self.fresh_counter);
            if self.lookup(&name).is_none() {
                return self.intern(&name);
            }
        }
    }
}

/// A named-relation catalog plus its dictionary.
///
/// Free variables of μ-RA terms are resolved against the catalog during
/// evaluation. `Database` also records the standard `src`/`dst` column
/// symbols used by the graph frontends.
#[derive(Debug, Default, Clone)]
pub struct Database {
    dict: Dictionary,
    rels: FxHashMap<Sym, Relation>,
    constants: FxHashMap<Sym, crate::value::Value>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Shared dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable dictionary (interning query constants, fresh columns…).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Interns a string in the database dictionary.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.dict.intern(s)
    }

    /// Registers (or replaces) relation `name`.
    pub fn insert_relation(&mut self, name: &str, rel: Relation) -> Sym {
        let sym = self.dict.intern(name);
        self.rels.insert(sym, rel);
        sym
    }

    /// Registers a relation under an existing symbol.
    pub fn insert_relation_sym(&mut self, name: Sym, rel: Relation) {
        self.rels.insert(name, rel);
    }

    /// Resolves a relation by symbol.
    pub fn relation(&self, name: Sym) -> Option<&Relation> {
        self.rels.get(&name)
    }

    /// Resolves a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&Relation> {
        self.dict.lookup(name).and_then(|s| self.rels.get(&s))
    }

    /// Iterates over (name, relation) pairs.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> {
        self.rels.iter().map(|(k, v)| (*k, v))
    }

    /// Number of registered relations.
    pub fn relation_count(&self) -> usize {
        self.rels.len()
    }

    /// Total number of rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// Registers a named constant (e.g. `Japan` → node id). Query frontends
    /// resolve bare identifiers in queries against this registry.
    pub fn bind_constant(&mut self, name: &str, value: crate::value::Value) -> Sym {
        let sym = self.dict.intern(name);
        self.constants.insert(sym, value);
        sym
    }

    /// Looks up a named constant by string.
    pub fn constant(&self, name: &str) -> Option<crate::value::Value> {
        self.dict.lookup(name).and_then(|s| self.constants.get(&s)).copied()
    }

    /// Iterates over registered constants.
    pub fn constants(&self) -> impl Iterator<Item = (Sym, crate::value::Value)> + '_ {
        self.constants.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn intern_is_stable() {
        let mut d = Dictionary::new();
        let a1 = d.intern("a");
        let b = d.intern("b");
        let a2 = d.intern("a");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(d.resolve(a1), "a");
        assert_eq!(d.lookup("b"), Some(b));
        assert_eq!(d.lookup("zzz"), None);
    }

    #[test]
    fn fresh_never_collides() {
        let mut d = Dictionary::new();
        d.intern("X#1");
        let f1 = d.fresh("X");
        let f2 = d.fresh("X");
        assert_ne!(f1, f2);
        assert_ne!(d.resolve(f1), "X#1");
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let e = db.insert_relation("E", Relation::from_pairs(src, dst, [(1, 2)]));
        assert_eq!(db.relation(e).unwrap().len(), 1);
        assert_eq!(db.relation_by_name("E").unwrap().len(), 1);
        assert!(db.relation_by_name("missing").is_none());
        db.insert_relation("empty", Relation::new(Schema::empty()));
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.total_rows(), 1);
    }
}
