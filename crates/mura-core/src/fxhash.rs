//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc), implemented in-tree so the workspace stays within its allowed
//! dependency set. Relations are hash sets of rows; hashing dominates many
//! inner loops, so the default SipHash would be a significant tax.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
/// Hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: multiply-rotate word-at-a-time hashing. Not HashDoS-resistant,
/// which is acceptable here: all keys are internally generated.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hash a single `u64` to a well-mixed `u64`; used by partitioners that need
/// a stable hash independent of hasher state.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    // splitmix64 finalizer: good avalanche, cheap.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fx<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(fx(&42u64), fx(&42u64));
        assert_eq!(fx(&"hello"), fx(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx(&1u64), fx(&2u64));
        assert_ne!(fx(&"a"), fx(&"b"));
        assert_ne!(fx(&[1u8, 2, 3][..]), fx(&[1u8, 2, 4][..]));
    }

    #[test]
    fn partial_chunks_differ_from_padded(// trailing bytes must not collide with explicit zero padding
    ) {
        assert_ne!(fx(&[1u8, 0][..]), fx(&[1u8][..]));
    }

    #[test]
    fn hash_u64_mixes() {
        // consecutive inputs should land far apart
        let a = hash_u64(1);
        let b = hash_u64(2);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn fxmap_works() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&999], 1998);
    }
}
