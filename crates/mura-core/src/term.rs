//! The μ-RA term language.
//!
//! Terms follow the paper's grammar (Fig. 1). Variables are a single
//! constructor: a variable is *recursive* when bound by an enclosing
//! [`Term::Fix`], otherwise it denotes a database relation. Constant
//! relations embed a materialized [`Relation`] behind an `Arc` so that plan
//! rewriting can clone terms cheaply.

use crate::relation::Relation;
use crate::value::{Sym, Value};
use std::sync::Arc;

/// A filter predicate (conjunctions are a `Vec<Pred>` on [`Term::Filter`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Column equals a constant.
    Eq(Sym, Value),
    /// Column differs from a constant.
    Neq(Sym, Value),
    /// Two columns are equal.
    EqCol(Sym, Sym),
}

impl Pred {
    /// Columns referenced by the predicate.
    pub fn columns(&self) -> Vec<Sym> {
        match self {
            Pred::Eq(c, _) | Pred::Neq(c, _) => vec![*c],
            Pred::EqCol(a, b) => vec![*a, *b],
        }
    }
}

/// A μ-RA term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// Relation variable: a database relation if free, or the recursion
    /// variable of an enclosing fixpoint.
    Var(Sym),
    /// Constant relation.
    Cst(Arc<Relation>),
    /// σ_preds(t): keep rows satisfying every predicate.
    Filter(Vec<Pred>, Box<Term>),
    /// ρ_from^to(t): rename column `from` to `to`.
    Rename(Sym, Sym, Box<Term>),
    /// π̃_cols(t): drop the listed columns.
    AntiProject(Vec<Sym>, Box<Term>),
    /// Natural join.
    Join(Box<Term>, Box<Term>),
    /// Antijoin (left rows without a match in right on common columns).
    Antijoin(Box<Term>, Box<Term>),
    /// Set union.
    Union(Box<Term>, Box<Term>),
    /// μ(X = body): least fixpoint.
    Fix(Sym, Box<Term>),
}

impl Term {
    /// Database/recursion variable reference.
    pub fn var(v: Sym) -> Term {
        Term::Var(v)
    }

    /// Constant relation.
    pub fn cst(r: Relation) -> Term {
        Term::Cst(Arc::new(r))
    }

    /// σ with a single predicate. Merges into an existing filter.
    pub fn filter(self, p: Pred) -> Term {
        match self {
            Term::Filter(mut ps, t) => {
                ps.push(p);
                Term::Filter(ps, t)
            }
            t => Term::Filter(vec![p], Box::new(t)),
        }
    }

    /// σ_{col = v}.
    pub fn filter_eq(self, col: Sym, v: impl Into<Value>) -> Term {
        self.filter(Pred::Eq(col, v.into()))
    }

    /// ρ_from^to.
    pub fn rename(self, from: Sym, to: Sym) -> Term {
        Term::Rename(from, to, Box::new(self))
    }

    /// π̃ of one column.
    pub fn antiproject(self, col: Sym) -> Term {
        Term::AntiProject(vec![col], Box::new(self))
    }

    /// π̃ of several columns.
    pub fn antiproject_all(self, cols: Vec<Sym>) -> Term {
        Term::AntiProject(cols, Box::new(self))
    }

    /// Natural join.
    pub fn join(self, other: Term) -> Term {
        Term::Join(Box::new(self), Box::new(other))
    }

    /// Antijoin.
    pub fn antijoin(self, other: Term) -> Term {
        Term::Antijoin(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn union(self, other: Term) -> Term {
        Term::Union(Box::new(self), Box::new(other))
    }

    /// μ(X = self).
    pub fn fix(self, var: Sym) -> Term {
        Term::Fix(var, Box::new(self))
    }

    /// Union of a non-empty list of terms (right-leaning).
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn union_all(mut terms: Vec<Term>) -> Term {
        assert!(!terms.is_empty(), "union of zero terms");
        let mut acc = terms.pop().unwrap();
        while let Some(t) = terms.pop() {
            acc = t.union(acc);
        }
        acc
    }

    /// Immediate children of the term.
    pub fn children(&self) -> Vec<&Term> {
        match self {
            Term::Var(_) | Term::Cst(_) => vec![],
            Term::Filter(_, t)
            | Term::Rename(_, _, t)
            | Term::AntiProject(_, t)
            | Term::Fix(_, t) => {
                vec![t]
            }
            Term::Join(a, b) | Term::Antijoin(a, b) | Term::Union(a, b) => vec![a, b],
        }
    }

    /// Number of AST nodes; used as a rewrite budget metric.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Number of fixpoint operators in the term.
    pub fn fixpoint_count(&self) -> usize {
        let me = matches!(self, Term::Fix(_, _)) as usize;
        me + self.children().iter().map(|c| c.fixpoint_count()).sum::<usize>()
    }

    /// True if variable `v` occurs free in the term.
    pub fn has_free_var(&self, v: Sym) -> bool {
        match self {
            Term::Var(x) => *x == v,
            Term::Cst(_) => false,
            Term::Fix(x, body) => *x != v && body.has_free_var(v),
            _ => self.children().iter().any(|c| c.has_free_var(v)),
        }
    }

    /// All free variables of the term (sorted, deduplicated).
    pub fn free_vars(&self) -> Vec<Sym> {
        fn go(t: &Term, bound: &mut Vec<Sym>, out: &mut Vec<Sym>) {
            match t {
                Term::Var(x) => {
                    if !bound.contains(x) && !out.contains(x) {
                        out.push(*x);
                    }
                }
                Term::Cst(_) => {}
                Term::Fix(x, body) => {
                    bound.push(*x);
                    go(body, bound, out);
                    bound.pop();
                }
                _ => {
                    for c in t.children() {
                        go(c, bound, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out.sort_unstable();
        out
    }

    /// Capture-avoiding substitution of variable `v` by term `by`.
    ///
    /// `by` must not contain free occurrences of any fixpoint variable bound
    /// along the path (we assert this instead of alpha-renaming: all our
    /// frontends generate globally fresh fixpoint variables).
    pub fn substitute(&self, v: Sym, by: &Term) -> Term {
        match self {
            Term::Var(x) => {
                if *x == v {
                    by.clone()
                } else {
                    self.clone()
                }
            }
            Term::Cst(_) => self.clone(),
            Term::Filter(ps, t) => Term::Filter(ps.clone(), Box::new(t.substitute(v, by))),
            Term::Rename(a, b, t) => Term::Rename(*a, *b, Box::new(t.substitute(v, by))),
            Term::AntiProject(cs, t) => {
                Term::AntiProject(cs.clone(), Box::new(t.substitute(v, by)))
            }
            Term::Join(a, b) => {
                Term::Join(Box::new(a.substitute(v, by)), Box::new(b.substitute(v, by)))
            }
            Term::Antijoin(a, b) => {
                Term::Antijoin(Box::new(a.substitute(v, by)), Box::new(b.substitute(v, by)))
            }
            Term::Union(a, b) => {
                Term::Union(Box::new(a.substitute(v, by)), Box::new(b.substitute(v, by)))
            }
            Term::Fix(x, body) => {
                if *x == v {
                    // v is shadowed: no free occurrences below.
                    self.clone()
                } else {
                    assert!(!by.has_free_var(*x), "substitution would capture fixpoint variable");
                    Term::Fix(*x, Box::new(body.substitute(v, by)))
                }
            }
        }
    }

    /// Renders the term with resolved names via the dictionary.
    pub fn display<'a>(&'a self, dict: &'a crate::catalog::Dictionary) -> TermDisplay<'a> {
        TermDisplay { term: self, dict }
    }
}

/// Canonical 64-bit structural key of a term.
///
/// `Term` deliberately does not implement `Hash` (constant relations embed
/// `Arc<Relation>`), so the key is computed by a structural walk that hashes
/// constant relations through their schema and sorted rows —
/// order-insensitive, like relation equality. Two structurally equal terms
/// (including equal constant contents) get the same key. The serving layer
/// keys its result cache and circuit breakers on this, and the incremental
/// view maintenance layer uses it to match captured fixpoint totals to the
/// `Fix` subterms of a cached plan.
pub fn term_key(t: &Term) -> u64 {
    use std::hash::{Hash, Hasher};
    fn go(t: &Term, h: &mut crate::fxhash::FxHasher) {
        match t {
            Term::Var(v) => {
                0u8.hash(h);
                v.hash(h);
            }
            Term::Cst(r) => {
                1u8.hash(h);
                r.schema().columns().hash(h);
                for row in r.sorted_rows() {
                    row.hash(h);
                }
            }
            Term::Filter(ps, inner) => {
                2u8.hash(h);
                ps.hash(h);
                go(inner, h);
            }
            Term::Rename(a, b, inner) => {
                3u8.hash(h);
                a.hash(h);
                b.hash(h);
                go(inner, h);
            }
            Term::AntiProject(cs, inner) => {
                4u8.hash(h);
                cs.hash(h);
                go(inner, h);
            }
            Term::Join(a, b) => {
                5u8.hash(h);
                go(a, h);
                go(b, h);
            }
            Term::Antijoin(a, b) => {
                6u8.hash(h);
                go(a, h);
                go(b, h);
            }
            Term::Union(a, b) => {
                7u8.hash(h);
                go(a, h);
                go(b, h);
            }
            Term::Fix(x, body) => {
                8u8.hash(h);
                x.hash(h);
                go(body, h);
            }
        }
    }
    let mut h = crate::fxhash::FxHasher::default();
    go(t, &mut h);
    h.finish()
}

/// Pretty printer for terms (see [`Term::display`]).
pub struct TermDisplay<'a> {
    term: &'a Term,
    dict: &'a crate::catalog::Dictionary,
}

impl std::fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn val(dict: &crate::catalog::Dictionary, v: &Value) -> String {
            match v {
                Value::Int(i) => i.to_string(),
                Value::Str(s) => dict.resolve(*s).to_string(),
            }
        }
        fn go(
            t: &Term,
            dict: &crate::catalog::Dictionary,
            f: &mut std::fmt::Formatter<'_>,
        ) -> std::fmt::Result {
            match t {
                Term::Var(v) => write!(f, "{}", dict.resolve(*v)),
                Term::Cst(r) => write!(f, "<const:{} rows>", r.len()),
                Term::Filter(ps, t) => {
                    write!(f, "σ[")?;
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        match p {
                            Pred::Eq(c, v) => write!(f, "{}={}", dict.resolve(*c), val(dict, v))?,
                            Pred::Neq(c, v) => write!(f, "{}≠{}", dict.resolve(*c), val(dict, v))?,
                            Pred::EqCol(a, b) => {
                                write!(f, "{}={}", dict.resolve(*a), dict.resolve(*b))?
                            }
                        }
                    }
                    write!(f, "](")?;
                    go(t, dict, f)?;
                    write!(f, ")")
                }
                Term::Rename(a, b, t) => {
                    write!(f, "ρ[{}→{}](", dict.resolve(*a), dict.resolve(*b))?;
                    go(t, dict, f)?;
                    write!(f, ")")
                }
                Term::AntiProject(cs, t) => {
                    write!(f, "π̃[")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", dict.resolve(*c))?;
                    }
                    write!(f, "](")?;
                    go(t, dict, f)?;
                    write!(f, ")")
                }
                Term::Join(a, b) => {
                    write!(f, "(")?;
                    go(a, dict, f)?;
                    write!(f, " ⋈ ")?;
                    go(b, dict, f)?;
                    write!(f, ")")
                }
                Term::Antijoin(a, b) => {
                    write!(f, "(")?;
                    go(a, dict, f)?;
                    write!(f, " ▷ ")?;
                    go(b, dict, f)?;
                    write!(f, ")")
                }
                Term::Union(a, b) => {
                    write!(f, "(")?;
                    go(a, dict, f)?;
                    write!(f, " ∪ ")?;
                    go(b, dict, f)?;
                    write!(f, ")")
                }
                Term::Fix(x, body) => {
                    write!(f, "μ({} = ", dict.resolve(*x))?;
                    go(body, dict, f)?;
                    write!(f, ")")
                }
            }
        }
        go(self.term, self.dict, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Dictionary;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn free_vars_respect_binders() {
        // μ(X = E ∪ (X ⋈ E)) has free var E only.
        let x = s(0);
        let e = s(1);
        let t = Term::var(e).union(Term::var(x).join(Term::var(e))).fix(x);
        assert_eq!(t.free_vars(), vec![e]);
        assert!(!t.has_free_var(x));
        assert!(t.has_free_var(e));
    }

    #[test]
    fn substitute_avoids_bound() {
        let x = s(0);
        let e = s(1);
        let r = s(2);
        let t = Term::var(e).union(Term::var(x)).fix(x);
        // Substituting x outside the binder does nothing inside.
        let t2 = t.substitute(x, &Term::var(r));
        assert_eq!(t, t2);
        // Substituting e does rewrite inside.
        let t3 = t.substitute(e, &Term::var(r));
        assert_eq!(t3.free_vars(), vec![r]);
    }

    #[test]
    fn size_and_counts() {
        let x = s(0);
        let e = s(1);
        let t = Term::var(e).union(Term::var(x).join(Term::var(e))).fix(x);
        assert_eq!(t.size(), 6);
        assert_eq!(t.fixpoint_count(), 1);
    }

    #[test]
    fn filter_builder_merges() {
        let e = s(1);
        let t = Term::var(e).filter_eq(s(2), 5i64).filter(Pred::Neq(s(3), Value::Int(1)));
        match t {
            Term::Filter(ps, _) => assert_eq!(ps.len(), 2),
            _ => panic!("expected merged filter"),
        }
    }

    #[test]
    fn display_smoke() {
        let mut d = Dictionary::new();
        let x = d.intern("X");
        let e = d.intern("E");
        let src = d.intern("src");
        let t = Term::var(e).filter_eq(src, 3i64).union(Term::var(x)).fix(x);
        let out = format!("{}", t.display(&d));
        assert!(out.contains("μ(X ="), "{out}");
        assert!(out.contains("σ[src=3](E)"), "{out}");
    }
}
