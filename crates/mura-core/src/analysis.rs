//! Static analysis of μ-RA terms.
//!
//! This module implements:
//!
//! * schema inference ([`infer_schema`]);
//! * the `F_cond` conditions of the paper (§II-B): *positive*, *linear*,
//!   *non-mutually-recursive* ([`check_fcond`]);
//! * decomposition of a fixpoint body into constant part `R` and variable
//!   part `φ` (`μ(X = R ∪ φ)`, Proposition 2) ([`decompose_fixpoint`]);
//! * column provenance through the recursive step and the **stabilizer**
//!   (Definition 10 of the μ-RA paper): the set of columns left unchanged by
//!   the fixpoint iteration ([`stable_columns`]). Stable columns drive both
//!   filter pushing (rewrites) and the data repartitioning of the `P_plw`
//!   distributed plan (§IV-A2).

use crate::catalog::Database;
use crate::error::{MuraError, Result};
use crate::fxhash::FxHashMap;
use crate::schema::Schema;
use crate::term::Term;
use crate::value::Sym;

/// Maps relation/recursion variables to their schemas during inference.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    map: FxHashMap<Sym, Schema>,
}

impl TypeEnv {
    /// Empty environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Environment with all catalog relations bound.
    pub fn from_db(db: &Database) -> Self {
        let mut env = TypeEnv::new();
        for (name, rel) in db.relations() {
            env.bind(name, rel.schema().clone());
        }
        env
    }

    /// Binds `v` to `schema`, returning the previous binding (for scoped
    /// restore).
    pub fn bind(&mut self, v: Sym, schema: Schema) -> Option<Schema> {
        self.map.insert(v, schema)
    }

    /// Removes the binding of `v` (restoring `prev` if given).
    pub fn unbind(&mut self, v: Sym, prev: Option<Schema>) {
        match prev {
            Some(s) => {
                self.map.insert(v, s);
            }
            None => {
                self.map.remove(&v);
            }
        }
    }

    /// Schema of `v`, if bound.
    pub fn get(&self, v: Sym) -> Option<&Schema> {
        self.map.get(&v)
    }
}

/// Infers the schema of `term` under `env`.
///
/// For fixpoints the schema is inferred from the constant part of the body
/// (which must exist and which all recursive branches must agree with).
pub fn infer_schema(term: &Term, env: &mut TypeEnv) -> Result<Schema> {
    match term {
        Term::Var(v) => env.get(*v).cloned().ok_or(MuraError::UnboundVariable(*v)),
        Term::Cst(r) => Ok(r.schema().clone()),
        Term::Filter(preds, t) => {
            let s = infer_schema(t, env)?;
            for p in preds {
                for c in p.columns() {
                    if !s.contains(c) {
                        return Err(MuraError::UnknownColumn {
                            column: c,
                            schema: s,
                            context: "filter",
                        });
                    }
                }
            }
            Ok(s)
        }
        Term::Rename(from, to, t) => {
            let s = infer_schema(t, env)?;
            if !s.contains(*from) {
                return Err(MuraError::UnknownColumn {
                    column: *from,
                    schema: s,
                    context: "rename",
                });
            }
            s.rename(*from, *to).ok_or(MuraError::RenameCollision {
                from: *from,
                to: *to,
                schema: infer_schema(t, env)?,
            })
        }
        Term::AntiProject(cols, t) => {
            let s = infer_schema(t, env)?;
            s.antiproject(cols).ok_or_else(|| MuraError::UnknownColumn {
                column: *cols.iter().find(|c| !s.contains(**c)).expect("some column missing"),
                schema: s.clone(),
                context: "antiprojection",
            })
        }
        Term::Join(a, b) => {
            let sa = infer_schema(a, env)?;
            let sb = infer_schema(b, env)?;
            Ok(sa.union(&sb))
        }
        Term::Antijoin(a, b) => {
            infer_schema(b, env)?;
            infer_schema(a, env)
        }
        Term::Union(a, b) => {
            let sa = infer_schema(a, env)?;
            let sb = infer_schema(b, env)?;
            if sa != sb {
                return Err(MuraError::SchemaMismatch { left: sa, right: sb, context: "union" });
            }
            Ok(sa)
        }
        Term::Fix(x, body) => {
            let (consts, recs) = decompose_fixpoint(*x, body)?;
            // Schema = schema of the constant part.
            let mut schema: Option<Schema> = None;
            for c in &consts {
                let s = infer_schema(c, env)?;
                match &schema {
                    None => schema = Some(s),
                    Some(prev) if *prev != s => {
                        return Err(MuraError::SchemaMismatch {
                            left: prev.clone(),
                            right: s,
                            context: "fixpoint constant part",
                        })
                    }
                    _ => {}
                }
            }
            let schema = schema.expect("decompose guarantees a constant part");
            let prev = env.bind(*x, schema.clone());
            let check = (|| {
                for r in &recs {
                    let s = infer_schema(r, env)?;
                    if s != schema {
                        return Err(MuraError::SchemaMismatch {
                            left: schema.clone(),
                            right: s,
                            context: "fixpoint recursive part",
                        });
                    }
                }
                Ok(())
            })();
            env.unbind(*x, prev);
            check?;
            Ok(schema)
        }
    }
}

/// Checks the three `F_cond` conditions on every fixpoint in `term`:
///
/// * **positive** — no recursive variable occurs in the right operand of an
///   antijoin;
/// * **linear** — no join/antijoin has a recursive variable free on both
///   sides;
/// * **non-mutually-recursive** — an inner fixpoint body must not mention an
///   outer fixpoint's variable.
///
/// Also rejects shadowing (two nested fixpoints binding the same variable),
/// which our frontends never produce and which would make analyses ambiguous.
pub fn check_fcond(term: &Term) -> Result<()> {
    fn go(t: &Term, active: &mut Vec<Sym>) -> Result<()> {
        match t {
            Term::Var(_) | Term::Cst(_) => Ok(()),
            Term::Filter(_, t) | Term::Rename(_, _, t) | Term::AntiProject(_, t) => go(t, active),
            Term::Union(a, b) => {
                go(a, active)?;
                go(b, active)
            }
            Term::Join(a, b) => {
                for &v in active.iter() {
                    if a.has_free_var(v) && b.has_free_var(v) {
                        return Err(MuraError::NotLinear(v));
                    }
                }
                go(a, active)?;
                go(b, active)
            }
            Term::Antijoin(a, b) => {
                for &v in active.iter() {
                    if b.has_free_var(v) {
                        return Err(MuraError::NotPositive(v));
                    }
                    if a.has_free_var(v) && b.has_free_var(v) {
                        return Err(MuraError::NotLinear(v));
                    }
                }
                go(a, active)?;
                go(b, active)
            }
            Term::Fix(x, body) => {
                if active.contains(x) {
                    return Err(MuraError::ShadowedVariable(*x));
                }
                for &v in active.iter() {
                    if body.has_free_var(v) {
                        return Err(MuraError::MutuallyRecursive(v));
                    }
                }
                active.push(*x);
                let r = go(body, active);
                active.pop();
                r
            }
        }
    }
    go(term, &mut Vec::new())
}

/// Splits a fixpoint body into constant branches (no free `x`) and recursive
/// branches, flattening unions (Proposition 2: `μ(X = R ∪ φ)`).
///
/// Errors if there is no constant branch (such a fixpoint denotes the empty
/// relation but has no inferable schema).
pub fn decompose_fixpoint(x: Sym, body: &Term) -> Result<(Vec<&Term>, Vec<&Term>)> {
    let mut consts = Vec::new();
    let mut recs = Vec::new();
    fn flatten<'t>(t: &'t Term, x: Sym, consts: &mut Vec<&'t Term>, recs: &mut Vec<&'t Term>) {
        match t {
            Term::Union(a, b) => {
                flatten(a, x, consts, recs);
                flatten(b, x, consts, recs);
            }
            _ => {
                if t.has_free_var(x) {
                    recs.push(t);
                } else {
                    consts.push(t);
                }
            }
        }
    }
    flatten(body, x, &mut consts, &mut recs);
    if consts.is_empty() {
        return Err(MuraError::Other(format!(
            "fixpoint on {x} has no constant part (denotes the empty relation)"
        )));
    }
    Ok((consts, recs))
}

/// Where an output column's value comes from, relative to the recursive
/// variable `X` of a fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The value is always copied verbatim from the given column of `X`.
    FromVar(Sym),
    /// The value does not (provably) come from `X`.
    Other,
}

/// Computes, for one recursive branch `φ` of a fixpoint on `x`, the
/// provenance of each output column. Conservative: `Other` whenever the
/// analysis cannot prove the copy.
pub fn branch_provenance(
    branch: &Term,
    x: Sym,
    x_schema: &Schema,
    env: &mut TypeEnv,
) -> Result<FxHashMap<Sym, Provenance>> {
    fn go(
        t: &Term,
        x: Sym,
        x_schema: &Schema,
        env: &mut TypeEnv,
    ) -> Result<FxHashMap<Sym, Provenance>> {
        Ok(match t {
            Term::Var(v) if *v == x => {
                x_schema.columns().iter().map(|&c| (c, Provenance::FromVar(c))).collect()
            }
            Term::Var(v) => {
                let s = env.get(*v).cloned().ok_or(MuraError::UnboundVariable(*v))?;
                s.columns().iter().map(|&c| (c, Provenance::Other)).collect()
            }
            Term::Cst(r) => r.schema().columns().iter().map(|&c| (c, Provenance::Other)).collect(),
            Term::Filter(_, t) => go(t, x, x_schema, env)?,
            Term::Rename(from, to, t) => {
                let mut m = go(t, x, x_schema, env)?;
                if let Some(p) = m.remove(from) {
                    m.insert(*to, p);
                }
                m
            }
            Term::AntiProject(cols, t) => {
                let mut m = go(t, x, x_schema, env)?;
                for c in cols {
                    m.remove(c);
                }
                m
            }
            Term::Join(a, b) => {
                let ma = go(a, x, x_schema, env)?;
                let mb = go(b, x, x_schema, env)?;
                let mut m = FxHashMap::default();
                for (c, p) in &ma {
                    m.insert(*c, *p);
                }
                for (c, p) in &mb {
                    match m.get(c) {
                        // Common column: join equality means either side's
                        // provenance is valid; prefer a FromVar witness.
                        Some(Provenance::FromVar(_)) => {}
                        _ => {
                            m.insert(*c, *p);
                        }
                    }
                }
                m
            }
            Term::Antijoin(a, b) => {
                // b is constant in x (F_cond positivity); output is a subset
                // of a's rows.
                let _ = go(b, x, x_schema, env)?;
                go(a, x, x_schema, env)?
            }
            Term::Union(a, b) => {
                let ma = go(a, x, x_schema, env)?;
                let mb = go(b, x, x_schema, env)?;
                let mut m = FxHashMap::default();
                for (c, pa) in &ma {
                    let p = match (pa, mb.get(c)) {
                        (Provenance::FromVar(ca), Some(Provenance::FromVar(cb))) if ca == cb => {
                            Provenance::FromVar(*ca)
                        }
                        _ => Provenance::Other,
                    };
                    m.insert(*c, p);
                }
                m
            }
            Term::Fix(y, _) => {
                // F_cond guarantees x does not occur inside a nested
                // fixpoint, so nothing flows from x through it.
                let s = infer_schema(t, env)?;
                let _ = y;
                s.columns().iter().map(|&c| (c, Provenance::Other)).collect()
            }
        })
    }
    go(branch, x, x_schema, env)
}

/// The **stabilizer** of a fixpoint `μ(x = body)`: the set of columns `c`
/// such that every recursive branch provably copies the value at `c` from
/// the same column `c` of `X`. Tuples produced during iteration therefore
/// never change their value at a stable column — filters on `c` commute with
/// the fixpoint, and partitioning the constant part by `c` makes the local
/// fixpoints disjoint (paper §IV-A2, proof of Proposition 3's refinement).
///
/// Returns the stable columns (sorted). A fixpoint with no recursive branch
/// has every column stable.
pub fn stable_columns(x: Sym, body: &Term, env: &mut TypeEnv) -> Result<Vec<Sym>> {
    let fix_term = Term::Fix(x, Box::new(body.clone()));
    let schema = infer_schema(&fix_term, env)?;
    let (_, recs) = decompose_fixpoint(x, body)?;
    let prev = env.bind(x, schema.clone());
    let result = (|| {
        let mut stable: Vec<Sym> = schema.columns().to_vec();
        for r in &recs {
            let prov = branch_provenance(r, x, &schema, env)?;
            stable.retain(|c| matches!(prov.get(c), Some(Provenance::FromVar(src)) if src == c));
        }
        Ok(stable)
    })();
    env.unbind(x, prev);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Dictionary;
    use crate::relation::Relation;

    struct Fixture {
        dict: Dictionary,
        x: Sym,
        e: Sym,
        s: Sym,
        src: Sym,
        dst: Sym,
        m: Sym,
        env: TypeEnv,
    }

    fn fixture() -> Fixture {
        let mut dict = Dictionary::new();
        let x = dict.intern("X");
        let e = dict.intern("E");
        let s = dict.intern("S");
        let src = dict.intern("src");
        let dst = dict.intern("dst");
        let m = dict.intern("m");
        let mut env = TypeEnv::new();
        env.bind(e, Schema::new(vec![src, dst]));
        env.bind(s, Schema::new(vec![src, dst]));
        Fixture { dict, x, e, s, src, dst, m, env }
    }

    /// The paper's Example 2 fixpoint:
    /// μ(X = S ∪ π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(E)))
    fn example2(f: &Fixture) -> Term {
        let step = Term::var(f.x)
            .rename(f.dst, f.m)
            .join(Term::var(f.e).rename(f.src, f.m))
            .antiproject(f.m);
        Term::var(f.s).union(step).fix(f.x)
    }

    #[test]
    fn infer_schema_example2() {
        let mut f = fixture();
        let t = example2(&f);
        let s = infer_schema(&t, &mut f.env).unwrap();
        assert_eq!(s, Schema::new(vec![f.src, f.dst]));
    }

    #[test]
    fn infer_schema_errors() {
        let mut f = fixture();
        let _ = &f.dict;
        // unknown filter column
        let bad = Term::var(f.e).filter_eq(f.m, 1i64);
        assert!(matches!(infer_schema(&bad, &mut f.env), Err(MuraError::UnknownColumn { .. })));
        // union mismatch
        let bad = Term::var(f.e).union(Term::var(f.e).antiproject(f.dst));
        assert!(matches!(infer_schema(&bad, &mut f.env), Err(MuraError::SchemaMismatch { .. })));
        // unbound var
        let bad = Term::var(f.x);
        assert!(matches!(infer_schema(&bad, &mut f.env), Err(MuraError::UnboundVariable(_))));
    }

    #[test]
    fn fcond_accepts_example2() {
        let f = fixture();
        check_fcond(&example2(&f)).unwrap();
    }

    #[test]
    fn fcond_rejects_nonpositive() {
        let f = fixture();
        // μ(X = E ∪ (E ▷ X)): X on the right of an antijoin.
        let t = Term::var(f.e).union(Term::var(f.e).antijoin(Term::var(f.x))).fix(f.x);
        assert_eq!(check_fcond(&t), Err(MuraError::NotPositive(f.x)));
    }

    #[test]
    fn fcond_rejects_nonlinear() {
        let f = fixture();
        // μ(X = E ∪ (X ⋈ X))
        let t = Term::var(f.e).union(Term::var(f.x).join(Term::var(f.x))).fix(f.x);
        assert_eq!(check_fcond(&t), Err(MuraError::NotLinear(f.x)));
    }

    #[test]
    fn fcond_rejects_mutual_recursion() {
        let mut f = fixture();
        let y = f.dict.intern("Y");
        // μ(X = E ∪ μ(Y = X ∪ Y))
        let inner = Term::var(f.x).union(Term::var(y)).fix(y);
        let t = Term::var(f.e).union(inner).fix(f.x);
        assert_eq!(check_fcond(&t), Err(MuraError::MutuallyRecursive(f.x)));
    }

    #[test]
    fn fcond_rejects_shadowing() {
        let f = fixture();
        let inner = Term::var(f.e).union(Term::var(f.x)).fix(f.x);
        let t = Term::var(f.e).union(inner.join(Term::var(f.x))).fix(f.x);
        assert_eq!(check_fcond(&t), Err(MuraError::ShadowedVariable(f.x)));
    }

    #[test]
    fn fcond_accepts_separate_inner_fixpoint() {
        let mut f = fixture();
        let y = f.dict.intern("Y");
        // μ(X = R ∪ X ⋈ μ(Y = φ(Y))) satisfies F_cond (paper example).
        let inner = Term::var(f.e).union(Term::var(y)).fix(y);
        let t = Term::var(f.e).union(Term::var(f.x).join(inner)).fix(f.x);
        check_fcond(&t).unwrap();
    }

    #[test]
    fn decompose_splits_branches() {
        let f = fixture();
        let t = example2(&f);
        if let Term::Fix(x, body) = &t {
            let (consts, recs) = decompose_fixpoint(*x, body).unwrap();
            assert_eq!(consts.len(), 1);
            assert_eq!(recs.len(), 1);
            assert_eq!(consts[0], &Term::var(f.s));
        } else {
            panic!("not a fixpoint");
        }
    }

    #[test]
    fn decompose_requires_constant_part() {
        let f = fixture();
        let body = Term::var(f.x)
            .rename(f.dst, f.m)
            .join(Term::var(f.e).rename(f.src, f.m))
            .antiproject(f.m);
        assert!(decompose_fixpoint(f.x, &body).is_err());
    }

    #[test]
    fn stabilizer_example2_src_stable() {
        // Paper §IV-A2: 'src' is stable in Example 2, 'dst' is not.
        let mut f = fixture();
        let t = example2(&f);
        if let Term::Fix(x, body) = &t {
            let stable = stable_columns(*x, body, &mut f.env).unwrap();
            assert_eq!(stable, vec![f.src]);
        } else {
            panic!();
        }
    }

    #[test]
    fn stabilizer_left_linear_dst_stable() {
        // Left-linear closure: prepend E on the left; dst is stable.
        let mut f = fixture();
        let step = Term::var(f.x)
            .rename(f.src, f.m)
            .join(Term::var(f.e).rename(f.dst, f.m))
            .antiproject(f.m);
        let body = Term::var(f.s).union(step);
        let stable = stable_columns(f.x, &body, &mut f.env).unwrap();
        assert_eq!(stable, vec![f.dst]);
    }

    #[test]
    fn stabilizer_both_linear_nothing_stable() {
        // Both-linear (merged) fixpoint: prepend on left OR append on right:
        // no stable column.
        let mut f = fixture();
        let append = Term::var(f.x)
            .rename(f.dst, f.m)
            .join(Term::var(f.e).rename(f.src, f.m))
            .antiproject(f.m);
        let prepend = Term::var(f.x)
            .rename(f.src, f.m)
            .join(Term::var(f.e).rename(f.dst, f.m))
            .antiproject(f.m);
        let body = Term::var(f.s).union(append).union(prepend);
        let stable = stable_columns(f.x, &body, &mut f.env).unwrap();
        assert!(stable.is_empty());
    }

    #[test]
    fn stabilizer_no_recursion_all_stable() {
        let mut f = fixture();
        let body = Term::var(f.s);
        let stable = stable_columns(f.x, &body, &mut f.env).unwrap();
        assert_eq!(stable, vec![f.src, f.dst]);
    }

    #[test]
    fn provenance_through_filter_and_antijoin() {
        let mut f = fixture();
        let x_schema = Schema::new(vec![f.src, f.dst]);
        f.env.bind(f.x, x_schema.clone());
        // σ(X) ▷ E keeps both provenances from X.
        let t = Term::var(f.x).filter_eq(f.src, 3i64).antijoin(Term::var(f.e));
        let prov = branch_provenance(&t, f.x, &x_schema, &mut f.env).unwrap();
        assert_eq!(prov.get(&f.src), Some(&Provenance::FromVar(f.src)));
        assert_eq!(prov.get(&f.dst), Some(&Provenance::FromVar(f.dst)));
    }

    #[test]
    fn provenance_constant_relation() {
        let mut f = fixture();
        let x_schema = Schema::new(vec![f.src, f.dst]);
        let rel = Relation::from_pairs(f.src, f.dst, [(1, 2)]);
        let t = Term::cst(rel);
        let prov = branch_provenance(&t, f.x, &x_schema, &mut f.env).unwrap();
        assert_eq!(prov.get(&f.src), Some(&Provenance::Other));
    }
}
