//! Cached build-side indexes for loop-invariant joins.
//!
//! Inside a semi-naive fixpoint the recursive step typically joins the small
//! per-iteration *delta* against a large loop-invariant constant (the edge
//! relation, a filtered subgraph, …). Rebuilding the build-side hash table on
//! every iteration — as a plain hash join does — makes the loop quadratic in
//! practice. A [`JoinIndex`] is constructed **once per fixpoint** over the
//! constant side and probed with each iteration's delta; [`KeyIndex`] is the
//! analogous cached key-set for antijoins.
//!
//! Probing is allocation-free: the index is keyed by a 64-bit hash computed
//! directly over the join-key positions of a row (no boxed key tuples), with
//! bucket entries verified by positional equality.

use crate::fxhash::{FxHashMap, FxHasher};
use crate::kernel::kernel_stats;
use crate::relation::{join_plan, Relation, Row};
use crate::schema::Schema;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Hashes the values of `row` at `positions` (in order) to a single `u64`.
/// Both sides of a join must use the same column order for their key
/// positions so equal keys collide.
#[inline]
pub fn hash_key(row: &[Value], positions: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &p in positions {
        row[p].hash(&mut h);
    }
    h.finish()
}

#[inline]
fn keys_match(a: &[Value], a_pos: &[usize], b: &[Value], b_pos: &[usize]) -> bool {
    a_pos.iter().zip(b_pos).all(|(&pa, &pb)| a[pa] == b[pb])
}

/// A build-side hash index for a natural join with a fixed probe schema.
///
/// Built once from the loop-invariant side; probed with delta rows each
/// iteration. Bucket values are indices into an owned row store, keyed by
/// [`hash_key`] over the build-side key positions.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    out_schema: Schema,
    /// For each output position: (take from probe row?, source position).
    out_src: Vec<(bool, usize)>,
    probe_key: Vec<usize>,
    build_key: Vec<usize>,
    build_rows: Vec<Row>,
    buckets: FxHashMap<u64, Vec<u32>>,
    approx_bytes: u64,
}

impl JoinIndex {
    /// Builds the index over `build_rows` for probes with `probe_schema`.
    pub fn build_from<'a>(
        probe_schema: &Schema,
        build_schema: &Schema,
        build_rows: impl Iterator<Item = &'a Row>,
    ) -> JoinIndex {
        // join_plan(left=probe, right=build): left_key/out_src booleans then
        // refer to the probe side directly.
        let plan = join_plan(probe_schema, build_schema);
        let rows: Vec<Row> = build_rows.cloned().collect();
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (i, row) in rows.iter().enumerate() {
            let h = hash_key(row, &plan.right_key);
            buckets.entry(h).or_default().push(i as u32);
        }
        kernel_stats().record_index_build();
        let approx_bytes =
            rows.len() as u64 * build_schema.arity() as u64 * std::mem::size_of::<Value>() as u64;
        JoinIndex {
            out_schema: plan.out_schema,
            out_src: plan.out_src,
            probe_key: plan.left_key,
            build_key: plan.right_key,
            build_rows: rows,
            buckets,
            approx_bytes,
        }
    }

    /// Builds the index over a materialized relation.
    pub fn build(probe_schema: &Schema, build: &Relation) -> JoinIndex {
        JoinIndex::build_from(probe_schema, build.schema(), build.iter())
    }

    /// Schema of the join output.
    pub fn out_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Number of build-side rows.
    pub fn build_len(&self) -> usize {
        self.build_rows.len()
    }

    /// True if the build side is empty (every probe yields nothing).
    pub fn is_empty(&self) -> bool {
        self.build_rows.is_empty()
    }

    /// Estimated footprint of the cached build side (payload values only),
    /// charged against byte budgets by the fixpoint drivers.
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// Probes one row, emitting each joined output row. Returns the number
    /// of rows emitted. No per-row key allocation: the probe key is hashed
    /// in place and candidates verified positionally.
    #[inline]
    pub fn probe(&self, prow: &[Value], mut emit: impl FnMut(Row)) -> u64 {
        let Some(bucket) = self.buckets.get(&hash_key(prow, &self.probe_key)) else {
            return 0;
        };
        let mut emitted = 0;
        for &i in bucket {
            let brow = &self.build_rows[i as usize];
            if keys_match(prow, &self.probe_key, brow, &self.build_key) {
                let out_row: Row = self
                    .out_src
                    .iter()
                    .map(|&(from_probe, p)| if from_probe { prow[p] } else { brow[p] })
                    .collect();
                emit(out_row);
                emitted += 1;
            }
        }
        emitted
    }
}

/// A cached antijoin key-set: the distinct join keys of the loop-invariant
/// side, hashed by position. `φ ▷ ψ` keeps the probe rows whose key is
/// *absent* from the set.
#[derive(Debug, Clone)]
pub struct KeyIndex {
    probe_key: Vec<usize>,
    /// Distinct build-side key tuples, bucketed by hash. Key tuples (not full
    /// rows) are stored, so verification reads only the key values.
    buckets: FxHashMap<u64, Vec<Box<[Value]>>>,
    /// Schemas share no columns: antijoin degenerates to all-or-nothing.
    disjoint: bool,
    build_empty: bool,
    approx_bytes: u64,
}

impl KeyIndex {
    /// Builds the key-set over `build_rows` for probes with `probe_schema`.
    pub fn build_from<'a>(
        probe_schema: &Schema,
        build_schema: &Schema,
        build_rows: impl Iterator<Item = &'a Row>,
    ) -> KeyIndex {
        let common = probe_schema.intersection(build_schema);
        let probe_key: Vec<usize> =
            common.iter().map(|&c| probe_schema.position(c).unwrap()).collect();
        let build_key: Vec<usize> =
            common.iter().map(|&c| build_schema.position(c).unwrap()).collect();
        let disjoint = common.is_empty();
        let mut buckets: FxHashMap<u64, Vec<Box<[Value]>>> = FxHashMap::default();
        let mut build_empty = true;
        for row in build_rows {
            build_empty = false;
            if disjoint {
                continue;
            }
            let h = hash_key(row, &build_key);
            let entry = buckets.entry(h).or_default();
            if !entry.iter().any(|k| k.iter().zip(&build_key).all(|(v, &p)| *v == row[p])) {
                entry.push(build_key.iter().map(|&p| row[p]).collect());
            }
        }
        kernel_stats().record_key_index_build();
        let approx_bytes =
            buckets.values().map(|b| b.iter().map(|k| k.len() as u64).sum::<u64>()).sum::<u64>()
                * std::mem::size_of::<Value>() as u64;
        KeyIndex { probe_key, buckets, disjoint, build_empty, approx_bytes }
    }

    /// Builds the key-set over a materialized relation.
    pub fn build(probe_schema: &Schema, build: &Relation) -> KeyIndex {
        KeyIndex::build_from(probe_schema, build.schema(), build.iter())
    }

    /// Estimated footprint of the cached key-set (payload values only).
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes
    }

    /// True if `prow`'s key appears in the build side (i.e. the antijoin
    /// drops the row). With disjoint schemas this is "is the build side
    /// non-empty", matching standard antijoin semantics.
    #[inline]
    pub fn contains(&self, prow: &[Value]) -> bool {
        if self.disjoint {
            return !self.build_empty;
        }
        let Some(bucket) = self.buckets.get(&hash_key(prow, &self.probe_key)) else {
            return false;
        };
        bucket.iter().any(|k| k.iter().zip(&self.probe_key).all(|(v, &p)| *v == prow[p]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Sym;

    fn sym(i: u32) -> Sym {
        Sym(i)
    }

    fn rel(cols: &[u32], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(cols.iter().map(|&c| sym(c)).collect());
        let perm: Vec<usize> = schema
            .columns()
            .iter()
            .map(|c| cols.iter().position(|&x| sym(x) == *c).unwrap())
            .collect();
        Relation::from_rows(
            schema,
            rows.iter().map(|r| perm.iter().map(|&p| Value::Int(r[p])).collect::<Row>()),
        )
    }

    #[test]
    fn indexed_join_matches_plain_join() {
        let probe = rel(&[1, 2], &[&[1, 10], &[2, 20], &[3, 10]]);
        let build = rel(&[2, 3], &[&[10, 100], &[10, 101], &[30, 300]]);
        let idx = JoinIndex::build(probe.schema(), &build);
        let mut out = Relation::new(idx.out_schema().clone());
        for prow in probe.iter() {
            idx.probe(prow, |row| {
                out.insert(row);
            });
        }
        assert_eq!(out.sorted_rows(), probe.join(&build).sorted_rows());
    }

    #[test]
    fn indexed_join_handles_cartesian_product() {
        let probe = rel(&[1], &[&[1], &[2]]);
        let build = rel(&[2], &[&[10], &[20]]);
        let idx = JoinIndex::build(probe.schema(), &build);
        let mut n = 0;
        for prow in probe.iter() {
            n += idx.probe(prow, |_| {});
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn indexed_join_empty_build() {
        let probe = rel(&[1], &[&[1]]);
        let build = rel(&[1], &[]);
        let idx = JoinIndex::build(probe.schema(), &build);
        assert!(idx.is_empty());
        assert_eq!(idx.probe(&[Value::Int(1)], |_| panic!("no match expected")), 0);
    }

    #[test]
    fn key_index_matches_antijoin() {
        let probe = rel(&[1, 2], &[&[1, 10], &[2, 20]]);
        let build = rel(&[2], &[&[10]]);
        let idx = KeyIndex::build(probe.schema(), &build);
        let kept: Vec<_> = probe.iter().filter(|r| !idx.contains(r)).cloned().collect();
        let expected = probe.antijoin(&build);
        assert_eq!(
            Relation::from_rows(probe.schema().clone(), kept.into_iter()).sorted_rows(),
            expected.sorted_rows()
        );
    }

    #[test]
    fn key_index_disjoint_schemas() {
        let probe = rel(&[1], &[&[1]]);
        let empty = rel(&[9], &[]);
        let nonempty = rel(&[9], &[&[5]]);
        assert!(!KeyIndex::build(probe.schema(), &empty).contains(&[Value::Int(1)]));
        assert!(KeyIndex::build(probe.schema(), &nonempty).contains(&[Value::Int(1)]));
    }

    #[test]
    fn probe_verifies_on_hash_collision_shape() {
        // Same bucket only matters when keys actually match; rows with
        // different keys must never be emitted even if hashed together.
        let probe = rel(&[1, 2], &[&[7, 1]]);
        let build = rel(&[2, 3], &[&[2, 9]]);
        let idx = JoinIndex::build(probe.schema(), &build);
        let mut n = 0;
        for prow in probe.iter() {
            n += idx.probe(prow, |_| {});
        }
        assert_eq!(n, 0);
    }

    #[test]
    fn build_counts_once() {
        let s = crate::kernel::kernel_stats();
        let before = s.snapshot();
        let probe = rel(&[1, 2], &[&[1, 10]]);
        let build = rel(&[2, 3], &[&[10, 100]]);
        let _ = JoinIndex::build(probe.schema(), &build);
        let _ = KeyIndex::build(probe.schema(), &build);
        let d = s.snapshot().since(&before);
        assert!(d.index_builds >= 1);
        assert!(d.key_index_builds >= 1);
    }
}
