//! Cooperative cancellation for long-running evaluations.
//!
//! A [`CancellationToken`] is a cheap, cloneable handle shared between the
//! party that starts an evaluation and the evaluation itself. The evaluator
//! calls [`CancellationToken::check`] at every fixpoint superstep (the
//! natural preemption points of recursive query evaluation — see
//! `mura-dist`'s `P_gld`, `P_plw` and `P_async` loops); the owner flips the
//! flag from another thread to stop the work promptly.
//!
//! A token can also carry a **deadline**. Deadlines are distinct from the
//! engine-level `ResourceLimits` timeout: the limit is part of the engine
//! configuration and reports [`MuraError::Timeout`], while a token deadline
//! is per-request (set by a serving layer on behalf of one client) and
//! reports [`MuraError::DeadlineExceeded`] so callers can tell the two
//! apart.

use crate::error::{MuraError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation flag with an optional per-request deadline.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
    /// `(deadline, budget_millis)`: when the deadline passes, the error
    /// reports the originally granted budget.
    deadline: Option<(Instant, u64)>,
}

impl CancellationToken {
    /// A token that never expires on its own.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that expires `budget` from now.
    pub fn with_timeout(budget: Duration) -> Self {
        CancellationToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some((Instant::now() + budget, budget.as_millis() as u64)),
        }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline.map(|(d, _)| d)
    }

    /// Errors with [`MuraError::Cancelled`] if cancelled, or
    /// [`MuraError::DeadlineExceeded`] if past the deadline.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(MuraError::Cancelled);
        }
        if let Some((deadline, millis)) = self.deadline {
            if Instant::now() > deadline {
                return Err(MuraError::DeadlineExceeded { millis });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes() {
        assert!(CancellationToken::new().check().is_ok());
    }

    #[test]
    fn cancel_is_seen_by_clones() {
        let t = CancellationToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(matches!(c.check(), Err(MuraError::Cancelled)));
    }

    #[test]
    fn deadline_reports_budget() {
        let t = CancellationToken::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(t.check(), Err(MuraError::DeadlineExceeded { millis: 0 })));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let t = CancellationToken::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        t.cancel();
        assert!(matches!(t.check(), Err(MuraError::Cancelled)));
    }

    #[test]
    fn future_deadline_passes() {
        let t = CancellationToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        assert!(t.deadline().is_some());
    }
}
