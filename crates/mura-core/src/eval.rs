//! Centralized evaluation of μ-RA terms.
//!
//! Fixpoints are computed with the paper's Algorithm 1 (semi-naive / delta
//! iteration): `φ` is applied to the *new* rows of each step only, which is
//! sound because `F_cond` terms distribute over union (Proposition 1).
//! A naive mode (recomputing `φ` on the whole accumulated relation each
//! step) is kept for differential testing.

use crate::analysis::{check_fcond, decompose_fixpoint};
use crate::catalog::Database;
use crate::error::{MuraError, Result};
use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::term::{Pred, Term};
use crate::value::{Sym, Value};
use std::time::{Duration, Instant};

/// Evaluation options: budgets model the paper's out-of-memory failures and
/// timeouts honestly (an engine "crashes" exactly when its intermediate
/// results exceed the budget).
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Use semi-naive (delta) fixpoint iteration. Default: true.
    pub semi_naive: bool,
    /// Abort when the cumulative number of materialized rows exceeds this.
    pub max_rows: Option<u64>,
    /// Abort when wall time exceeds this.
    pub timeout: Option<Duration>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { semi_naive: true, max_rows: None, timeout: None }
    }
}

/// Counters reported after evaluation.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Total fixpoint iterations across all fixpoints in the term.
    pub fixpoint_iterations: u64,
    /// Cumulative rows materialized by all operators.
    pub produced_rows: u64,
    /// Largest single relation materialized.
    pub peak_rows: u64,
}

/// A μ-RA evaluator over a database.
pub struct Evaluator<'db> {
    db: &'db Database,
    opts: EvalOptions,
    stats: EvalStats,
    start: Instant,
    bound: FxHashMap<Sym, Relation>,
}

impl<'db> Evaluator<'db> {
    /// New evaluator with the given options.
    pub fn new(db: &'db Database, opts: EvalOptions) -> Self {
        Evaluator {
            db,
            opts,
            stats: EvalStats::default(),
            start: Instant::now(),
            bound: FxHashMap::default(),
        }
    }

    /// Evaluates a closed term (checks `F_cond` on all fixpoints first).
    pub fn eval(&mut self, term: &Term) -> Result<Relation> {
        check_fcond(term)?;
        self.start = Instant::now();
        self.eval_term(term)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    fn account(&mut self, rel: &Relation) -> Result<()> {
        self.stats.produced_rows += rel.len() as u64;
        self.stats.peak_rows = self.stats.peak_rows.max(rel.len() as u64);
        if let Some(max) = self.opts.max_rows {
            if self.stats.produced_rows > max {
                return Err(MuraError::ResourceExhausted {
                    what: "materialized rows",
                    limit: max,
                    reached: self.stats.produced_rows,
                });
            }
        }
        if let Some(t) = self.opts.timeout {
            if self.start.elapsed() > t {
                return Err(MuraError::Timeout { millis: t.as_millis() as u64 });
            }
        }
        Ok(())
    }

    fn eval_term(&mut self, term: &Term) -> Result<Relation> {
        let rel = match term {
            Term::Var(v) => {
                if let Some(r) = self.bound.get(v) {
                    r.clone()
                } else if let Some(r) = self.db.relation(*v) {
                    r.clone()
                } else {
                    return Err(MuraError::UnboundVariable(*v));
                }
            }
            Term::Cst(r) => (**r).clone(),
            Term::Filter(preds, t) => {
                let child = self.eval_term(t)?;
                apply_filter(&child, preds)?
            }
            Term::Rename(from, to, t) => {
                let child = self.eval_term(t)?;
                if !child.schema().contains(*from) {
                    return Err(MuraError::UnknownColumn {
                        column: *from,
                        schema: child.schema().clone(),
                        context: "rename",
                    });
                }
                if child.schema().rename(*from, *to).is_none() {
                    return Err(MuraError::RenameCollision {
                        from: *from,
                        to: *to,
                        schema: child.schema().clone(),
                    });
                }
                child.rename(*from, *to)
            }
            Term::AntiProject(cols, t) => {
                let child = self.eval_term(t)?;
                for c in cols {
                    if !child.schema().contains(*c) {
                        return Err(MuraError::UnknownColumn {
                            column: *c,
                            schema: child.schema().clone(),
                            context: "antiprojection",
                        });
                    }
                }
                child.antiproject(cols)
            }
            Term::Join(a, b) => {
                let ra = self.eval_term(a)?;
                let rb = self.eval_term(b)?;
                ra.join(&rb)
            }
            Term::Antijoin(a, b) => {
                let ra = self.eval_term(a)?;
                let rb = self.eval_term(b)?;
                ra.antijoin(&rb)
            }
            Term::Union(a, b) => {
                let ra = self.eval_term(a)?;
                let rb = self.eval_term(b)?;
                if ra.schema() != rb.schema() {
                    return Err(MuraError::SchemaMismatch {
                        left: ra.schema().clone(),
                        right: rb.schema().clone(),
                        context: "union",
                    });
                }
                ra.union(&rb)
            }
            Term::Fix(x, body) => self.eval_fixpoint(*x, body)?,
        };
        self.account(&rel)?;
        Ok(rel)
    }

    /// Algorithm 1 of the paper. `X = R; new = R; while new ≠ ∅ { new =
    /// φ(new) \ X; X = X ∪ new }` — with `φ(new)` replaced by `φ(X)` in
    /// naive mode.
    fn eval_fixpoint(&mut self, x: Sym, body: &Term) -> Result<Relation> {
        let (consts, recs) = decompose_fixpoint(x, body)?;
        // Evaluate the constant part R.
        let mut acc: Option<Relation> = None;
        for c in consts {
            let r = self.eval_term(c)?;
            match &mut acc {
                None => acc = Some(r),
                Some(a) => {
                    if a.schema() != r.schema() {
                        return Err(MuraError::SchemaMismatch {
                            left: a.schema().clone(),
                            right: r.schema().clone(),
                            context: "fixpoint constant part",
                        });
                    }
                    a.absorb(r);
                }
            }
        }
        let mut xrel = acc.expect("decompose guarantees a constant part");
        if recs.is_empty() {
            return Ok(xrel);
        }
        // Hoist loop invariants: subterms of the recursive branches that do
        // not depend on `x` are evaluated once here instead of once per
        // iteration. (In the distributed plans these are exactly the
        // relations that get broadcast.)
        let recs: Vec<Term> =
            recs.iter().map(|r| self.hoist_invariants(r, x)).collect::<Result<_>>()?;
        let mut delta = xrel.clone();
        while !delta.is_empty() {
            self.stats.fixpoint_iterations += 1;
            let input = if self.opts.semi_naive { delta.clone() } else { xrel.clone() };
            let prev = self.bound.insert(x, input);
            let mut new: Option<Relation> = None;
            let step = (|| {
                for r in &recs {
                    let produced = self.eval_term(r)?;
                    if produced.schema() != xrel.schema() {
                        return Err(MuraError::SchemaMismatch {
                            left: xrel.schema().clone(),
                            right: produced.schema().clone(),
                            context: "fixpoint recursive part",
                        });
                    }
                    match &mut new {
                        None => new = Some(produced),
                        Some(n) => n.absorb(produced),
                    }
                }
                Ok(())
            })();
            match prev {
                Some(p) => {
                    self.bound.insert(x, p);
                }
                None => {
                    self.bound.remove(&x);
                }
            }
            step?;
            let new = new.expect("at least one recursive branch").minus(&xrel);
            self.account(&new)?;
            if new.is_empty() {
                break;
            }
            xrel.absorb(new.clone());
            self.account(&xrel)?;
            delta = new;
        }
        Ok(xrel)
    }
}

impl Evaluator<'_> {
    /// Replaces every maximal subterm of `t` that does not mention `x` with
    /// the constant relation it evaluates to. Sound because such subterms
    /// are loop invariants of the fixpoint on `x` (`F_cond` guarantees `x`
    /// cannot occur inside nested fixpoints, so those are hoisted whole).
    fn hoist_invariants(&mut self, t: &Term, x: Sym) -> Result<Term> {
        if !t.has_free_var(x) {
            let rel = self.eval_term(t)?;
            return Ok(Term::cst(rel));
        }
        Ok(match t {
            Term::Var(_) => t.clone(),
            Term::Cst(_) => t.clone(),
            Term::Filter(ps, inner) => {
                Term::Filter(ps.clone(), Box::new(self.hoist_invariants(inner, x)?))
            }
            Term::Rename(a, b, inner) => {
                Term::Rename(*a, *b, Box::new(self.hoist_invariants(inner, x)?))
            }
            Term::AntiProject(cs, inner) => {
                Term::AntiProject(cs.clone(), Box::new(self.hoist_invariants(inner, x)?))
            }
            Term::Join(a, b) => Term::Join(
                Box::new(self.hoist_invariants(a, x)?),
                Box::new(self.hoist_invariants(b, x)?),
            ),
            Term::Antijoin(a, b) => Term::Antijoin(
                Box::new(self.hoist_invariants(a, x)?),
                Box::new(self.hoist_invariants(b, x)?),
            ),
            Term::Union(a, b) => Term::Union(
                Box::new(self.hoist_invariants(a, x)?),
                Box::new(self.hoist_invariants(b, x)?),
            ),
            Term::Fix(_, _) => unreachable!("F_cond: x cannot occur under a nested fixpoint"),
        })
    }
}

/// Applies a conjunction of predicates to a relation.
pub fn apply_filter(rel: &Relation, preds: &[Pred]) -> Result<Relation> {
    // Compile to positional checks once.
    enum C {
        Eq(usize, Value),
        Neq(usize, Value),
        EqCol(usize, usize),
    }
    let mut compiled = Vec::with_capacity(preds.len());
    for p in preds {
        for c in p.columns() {
            if !rel.schema().contains(c) {
                return Err(MuraError::UnknownColumn {
                    column: c,
                    schema: rel.schema().clone(),
                    context: "filter",
                });
            }
        }
        compiled.push(match p {
            Pred::Eq(c, v) => C::Eq(rel.schema().position(*c).unwrap(), *v),
            Pred::Neq(c, v) => C::Neq(rel.schema().position(*c).unwrap(), *v),
            Pred::EqCol(a, b) => {
                C::EqCol(rel.schema().position(*a).unwrap(), rel.schema().position(*b).unwrap())
            }
        });
    }
    Ok(rel.filter(|row| {
        compiled.iter().all(|c| match c {
            C::Eq(p, v) => row[*p] == *v,
            C::Neq(p, v) => row[*p] != *v,
            C::EqCol(a, b) => row[*a] == row[*b],
        })
    }))
}

/// Evaluates `term` against `db` with default options (semi-naive).
pub fn eval(term: &Term, db: &Database) -> Result<Relation> {
    Evaluator::new(db, EvalOptions::default()).eval(term)
}

/// Evaluates with naive fixpoint iteration (for differential testing).
pub fn eval_naive_fixpoints(term: &Term, db: &Database) -> Result<Relation> {
    let opts = EvalOptions { semi_naive: false, ..EvalOptions::default() };
    Evaluator::new(db, opts).eval(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    /// Builds the paper's Fig. 2 graph: root edges S = {(1,2),(1,4),(10,11),
    /// (10,13)} and edges E adding (2,3),(4,5),(11,5),(13,12),(5,6),(12,6)…
    /// We reproduce the exact example: the fixpoint from S over E must reach
    /// X_4 = X_3 (fixpoint after 4 steps) with the listed pairs.
    fn paper_db() -> (Database, Sym, Sym, Sym, Sym, Sym, Sym) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e_edges =
            [(1, 2), (1, 4), (10, 11), (10, 13), (2, 3), (4, 5), (11, 5), (13, 12), (3, 6), (5, 6)];
        let s_edges = [(1, 2), (1, 4), (10, 11), (10, 13)];
        let e = db.insert_relation("E", Relation::from_pairs(src, dst, e_edges));
        let s = db.insert_relation("S", Relation::from_pairs(src, dst, s_edges));
        (db, e, s, src, dst, m, x)
    }

    fn reach_term(e: Sym, s: Sym, src: Sym, dst: Sym, m: Sym, x: Sym) -> Term {
        let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
        Term::var(s).union(step).fix(x)
    }

    #[test]
    fn example2_fixpoint_matches_paper() {
        let (db, e, s, src, dst, m, x) = paper_db();
        let t = reach_term(e, s, src, dst, m, x);
        let result = eval(&t, &db).unwrap();
        // Paper's X_3: S plus {(1,3),(1,5),(10,5),(10,12),(1,6),(10,6)}.
        let expected = Relation::from_pairs(
            src,
            dst,
            [
                (1, 2),
                (1, 4),
                (10, 11),
                (10, 13),
                (1, 3),
                (1, 5),
                (10, 5),
                (10, 12),
                (1, 6),
                (10, 6),
            ],
        );
        assert_eq!(result.sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn naive_equals_semi_naive() {
        let (db, e, s, src, dst, m, x) = paper_db();
        let t = reach_term(e, s, src, dst, m, x);
        let a = eval(&t, &db).unwrap();
        let b = eval_naive_fixpoints(&t, &db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn fixpoint_counts_iterations() {
        let (db, e, s, src, dst, m, x) = paper_db();
        let t = reach_term(e, s, src, dst, m, x);
        let mut ev = Evaluator::new(&db, EvalOptions::default());
        ev.eval(&t).unwrap();
        // Paper: X_1 = S (before the loop), then two productive φ steps and
        // one empty step detecting the fixpoint (X_4 = X_3) — 3 loop turns.
        assert_eq!(ev.stats().fixpoint_iterations, 3);
    }

    #[test]
    fn filter_and_antijoin_eval() {
        let (db, e, _s, src, dst, _m, _x) = paper_db();
        // σ_src=1(E) has two rows.
        let t = Term::var(e).filter_eq(src, 1i64);
        assert_eq!(eval(&t, &db).unwrap().len(), 2);
        // E ▷ σ_src=1(E) on full schema removes exactly those two rows.
        let t2 = Term::var(e).antijoin(Term::var(e).filter_eq(src, 1i64));
        assert_eq!(eval(&t2, &db).unwrap().len(), 8);
        let _ = dst;
    }

    #[test]
    fn row_budget_aborts() {
        let (db, e, s, src, dst, m, x) = paper_db();
        let t = reach_term(e, s, src, dst, m, x);
        let opts = EvalOptions { max_rows: Some(5), ..Default::default() };
        let err = Evaluator::new(&db, opts).eval(&t).unwrap_err();
        assert!(matches!(err, MuraError::ResourceExhausted { .. }));
    }

    #[test]
    fn unbound_variable_error() {
        let (db, ..) = paper_db();
        let t = Term::var(Sym(4242));
        assert!(matches!(eval(&t, &db), Err(MuraError::UnboundVariable(_))));
    }

    #[test]
    fn union_schema_mismatch_error() {
        let (db, e, _s, _src, dst, _m, _x) = paper_db();
        let t = Term::var(e).union(Term::var(e).antiproject(dst));
        assert!(matches!(eval(&t, &db), Err(MuraError::SchemaMismatch { .. })));
    }

    #[test]
    fn constant_relation_evaluates() {
        let (db, _e, _s, src, dst, _m, _x) = paper_db();
        let t = Term::cst(Relation::from_pairs(src, dst, [(7, 8)]));
        let r = eval(&t, &db).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        // 3-cycle: TC is all 9 pairs.
        let e = db.insert_relation("E", Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 0)]));
        let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
        let t = Term::var(e).union(step).fix(x);
        let r = eval(&t, &db).unwrap();
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn empty_schema_relation_fixpoint() {
        // A fixpoint over a 0-ary relation degenerates gracefully.
        let mut db = Database::new();
        let x = db.intern("X");
        let unit = Relation::from_rows(Schema::empty(), [Vec::new().into_boxed_slice()]);
        let t = Term::cst(unit).union(Term::var(x)).fix(x);
        let r = eval(&t, &db).unwrap();
        assert_eq!(r.len(), 1);
    }
}
