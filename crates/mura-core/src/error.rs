//! Error types shared across the workspace's core layers.

use crate::schema::Schema;
use crate::value::Sym;
use std::fmt;

/// Result alias for μ-RA operations.
pub type Result<T> = std::result::Result<T, MuraError>;

/// Errors raised by term analysis and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuraError {
    /// A free variable has no binding in the catalog or environment.
    UnboundVariable(Sym),
    /// Union (or fixpoint branches) over incompatible schemas.
    SchemaMismatch { left: Schema, right: Schema, context: &'static str },
    /// A column referenced by filter/rename/antiprojection is missing.
    UnknownColumn { column: Sym, schema: Schema, context: &'static str },
    /// Rename target already exists in the schema.
    RenameCollision { from: Sym, to: Sym, schema: Schema },
    /// The fixpoint violates one of the `F_cond` conditions.
    NotPositive(Sym),
    /// The fixpoint is not linear in its recursive variable.
    NotLinear(Sym),
    /// Mutual recursion between fixpoint variables.
    MutuallyRecursive(Sym),
    /// The same variable is bound twice by nested fixpoints.
    ShadowedVariable(Sym),
    /// A resource budget was exceeded (used to model the paper's
    /// "system crashed" outcomes honestly).
    ResourceExhausted { what: &'static str, limit: u64, reached: u64 },
    /// The per-query byte budget (`ResourceLimits.max_bytes`) was exceeded.
    /// Reported instead of letting the evaluation run the process out of
    /// memory; `used` is the charged footprint when the budget tripped.
    /// Not retryable: re-running the same plan allocates the same bytes.
    MemoryExceeded { used: u64, limit: u64 },
    /// Evaluation exceeded the configured timeout.
    Timeout { millis: u64 },
    /// The query was cancelled through its [`CancellationToken`]
    /// (crate::cancel::CancellationToken).
    Cancelled,
    /// A per-request deadline passed; `millis` is the granted budget.
    /// Distinct from [`MuraError::Timeout`], which reports the engine-level
    /// resource limit rather than a client deadline.
    DeadlineExceeded { millis: u64 },
    /// A cluster worker panicked while running a partition task. The panic
    /// is captured (it no longer aborts the process); `payload` carries the
    /// panic message. Retryable: the supervisor re-runs the task.
    WorkerFailed { worker: usize, payload: String },
    /// A transient task error (injected by the fault plan, or any failure a
    /// retry may fix). Retryable.
    TransientFault { worker: usize },
    /// Frontend (parser / translation) error.
    Frontend(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for MuraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuraError::UnboundVariable(v) => write!(f, "unbound relation variable {v}"),
            MuraError::SchemaMismatch { left, right, context } => {
                write!(f, "schema mismatch in {context}: {left} vs {right}")
            }
            MuraError::UnknownColumn { column, schema, context } => {
                write!(f, "unknown column {column} in {context} over {schema}")
            }
            MuraError::RenameCollision { from, to, schema } => {
                write!(f, "rename {from}->{to} collides in {schema}")
            }
            MuraError::NotPositive(v) => {
                write!(f, "fixpoint on {v} is not positive (recursion under antijoin right side)")
            }
            MuraError::NotLinear(v) => write!(f, "fixpoint on {v} is not linear"),
            MuraError::MutuallyRecursive(v) => write!(f, "fixpoint on {v} is mutually recursive"),
            MuraError::ShadowedVariable(v) => write!(f, "fixpoint variable {v} is shadowed"),
            MuraError::ResourceExhausted { what, limit, reached } => {
                write!(f, "resource exhausted: {what} reached {reached} (limit {limit})")
            }
            MuraError::MemoryExceeded { used, limit } => {
                write!(f, "memory budget exceeded: {used} bytes used (limit {limit})")
            }
            MuraError::Timeout { millis } => write!(f, "evaluation timed out after {millis} ms"),
            MuraError::Cancelled => write!(f, "query cancelled"),
            MuraError::DeadlineExceeded { millis } => {
                write!(f, "deadline exceeded (budget {millis} ms)")
            }
            MuraError::WorkerFailed { worker, payload } => {
                write!(f, "worker {worker} failed: {payload}")
            }
            MuraError::TransientFault { worker } => {
                write!(f, "transient task failure on worker {worker}")
            }
            MuraError::Frontend(s) => write!(f, "frontend error: {s}"),
            MuraError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl MuraError {
    /// True for failures a task retry or a checkpoint restore may fix:
    /// captured worker panics and transient task errors. Budget, deadline
    /// and cancellation errors are final — retrying a cancelled query is
    /// never correct.
    pub fn is_retryable(&self) -> bool {
        matches!(self, MuraError::WorkerFailed { .. } | MuraError::TransientFault { .. })
    }
}

impl std::error::Error for MuraError {}
