//! CRC-32 (IEEE 802.3) — the integrity check shared by the worker wire
//! protocol (`mura-dist`) and the durability layer (`mura-durable`).
//!
//! Hand-rolled and table-driven: the workspace builds offline with no
//! external crates, and both users need the *same* polynomial so a frame
//! checksummed by one layer can be audited by the other. The reflected
//! polynomial `0xEDB8_8320` with initial value / final XOR of `!0` matches
//! zlib's `crc32()`, Ethernet and PNG — handy when inspecting a WAL or a
//! packet capture with standard tooling.

/// The 256-entry lookup table for the reflected IEEE polynomial, computed
/// at compile time (one shift-or-xor step per bit).
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 state. Feed bytes with [`Crc32::update`], finish
/// with [`Crc32::finish`]; [`crc32`] is the one-shot convenience.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh state (initial value `!0`).
    pub fn new() -> Self {
        Crc32(!0)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final checksum (applies the closing XOR; the state itself is
    /// unchanged, so interleaved `finish` calls are running checksums).
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // zlib: crc32("The quick brown fox jumps over the lazy dog")
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"durable coordinator state".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit} must be detected");
            }
        }
    }
}
