//! Kernel-level instrumentation for the fixpoint evaluation kernels.
//!
//! The loop-invariant optimizations (constant folding in `prepare`, cached
//! join indexes, allocation-free probes) are only trustworthy if they are
//! *observable*: these process-wide counters record how often the expensive
//! operations actually run, so tests can assert e.g. that a build-side join
//! index is constructed once per fixpoint rather than once per iteration,
//! and serving layers can surface the numbers alongside cache statistics.
//!
//! The counters are global atomics (one evaluation kernel per process, many
//! clusters), mirroring the snapshot/`since` pattern of the communication
//! metrics in `mura-dist`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide counters for the evaluation kernels.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Build-side join indexes constructed (once per `Join(delta, const)`
    /// per fixpoint when the kernels are working as intended).
    pub index_builds: AtomicU64,
    /// Antijoin key-sets constructed.
    pub key_index_builds: AtomicU64,
    /// Rows probed against a cached join index.
    pub join_probes: AtomicU64,
    /// Rows probed against a cached antijoin key-set.
    pub antijoin_probes: AtomicU64,
    /// Output rows materialized by the indexed kernels.
    pub rows_allocated: AtomicU64,
    /// Variable-free subtrees folded into a single pre-materialized constant
    /// by `prepare` (counted once per fold, before iteration starts).
    pub const_folds: AtomicU64,
    /// Semi-naive iterations executed by prepared fixpoint loops.
    pub iterations: AtomicU64,
    /// Nanoseconds spent inside prepared kernel evaluation.
    pub eval_nanos: AtomicU64,
}

impl KernelStats {
    /// Records one join-index build.
    pub fn record_index_build(&self) {
        self.index_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one antijoin key-set build.
    pub fn record_key_index_build(&self) {
        self.key_index_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch of `rows` probes against a join index.
    pub fn record_join_probes(&self, rows: u64) {
        self.join_probes.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records a batch of `rows` probes against an antijoin key-set.
    pub fn record_antijoin_probes(&self, rows: u64) {
        self.antijoin_probes.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records `rows` output rows materialized.
    pub fn record_rows_allocated(&self, rows: u64) {
        self.rows_allocated.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records one constant subtree folded during `prepare`.
    pub fn record_const_fold(&self) {
        self.const_folds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one semi-naive iteration.
    pub fn record_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records time spent in prepared kernel evaluation.
    pub fn record_eval_time(&self, d: Duration) {
        self.eval_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Immutable snapshot of the counters.
    pub fn snapshot(&self) -> KernelSnapshot {
        KernelSnapshot {
            index_builds: self.index_builds.load(Ordering::Relaxed),
            key_index_builds: self.key_index_builds.load(Ordering::Relaxed),
            join_probes: self.join_probes.load(Ordering::Relaxed),
            antijoin_probes: self.antijoin_probes.load(Ordering::Relaxed),
            rows_allocated: self.rows_allocated.load(Ordering::Relaxed),
            const_folds: self.const_folds.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            eval_nanos: self.eval_nanos.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide kernel counters.
pub fn kernel_stats() -> &'static KernelStats {
    static STATS: KernelStats = KernelStats {
        index_builds: AtomicU64::new(0),
        key_index_builds: AtomicU64::new(0),
        join_probes: AtomicU64::new(0),
        antijoin_probes: AtomicU64::new(0),
        rows_allocated: AtomicU64::new(0),
        const_folds: AtomicU64::new(0),
        iterations: AtomicU64::new(0),
        eval_nanos: AtomicU64::new(0),
    };
    &STATS
}

/// A point-in-time copy of [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    pub index_builds: u64,
    pub key_index_builds: u64,
    pub join_probes: u64,
    pub antijoin_probes: u64,
    pub rows_allocated: u64,
    pub const_folds: u64,
    pub iterations: u64,
    pub eval_nanos: u64,
}

impl KernelSnapshot {
    /// Difference against an earlier snapshot (saturating, so interleaved
    /// resets never underflow).
    pub fn since(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        KernelSnapshot {
            index_builds: self.index_builds.saturating_sub(earlier.index_builds),
            key_index_builds: self.key_index_builds.saturating_sub(earlier.key_index_builds),
            join_probes: self.join_probes.saturating_sub(earlier.join_probes),
            antijoin_probes: self.antijoin_probes.saturating_sub(earlier.antijoin_probes),
            rows_allocated: self.rows_allocated.saturating_sub(earlier.rows_allocated),
            const_folds: self.const_folds.saturating_sub(earlier.const_folds),
            iterations: self.iterations.saturating_sub(earlier.iterations),
            eval_nanos: self.eval_nanos.saturating_sub(earlier.eval_nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_isolates_a_window() {
        let s = kernel_stats();
        let before = s.snapshot();
        s.record_index_build();
        s.record_join_probes(10);
        s.record_rows_allocated(7);
        s.record_const_fold();
        let d = s.snapshot().since(&before);
        assert!(d.index_builds >= 1);
        assert!(d.join_probes >= 10);
        assert!(d.rows_allocated >= 7);
        assert!(d.const_folds >= 1);
    }

    #[test]
    fn snapshot_is_monotone() {
        let s = kernel_stats();
        let a = s.snapshot();
        s.record_iteration();
        s.record_eval_time(Duration::from_nanos(5));
        let b = s.snapshot();
        assert!(b.iterations > a.iterations);
        assert!(b.eval_nanos >= a.eval_nanos + 5);
    }
}
