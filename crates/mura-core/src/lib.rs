//! # mura-core — recursive relational algebra (μ-RA)
//!
//! This crate implements the μ-RA algebra of Jachiet et al. (SIGMOD'20) as
//! used by the Dist-μ-RA system (Chlyah, Genevès, Layaïda): Codd's relational
//! algebra extended with a fixpoint operator `μ(X = Ψ)`.
//!
//! The grammar (paper Fig. 1):
//!
//! ```text
//! φ, ψ ::=  X                   relation variable (free: database relation,
//!                               bound: recursive variable of a fixpoint)
//!        |  |c₁ → v₁, …|        constant relation
//!        |  σ_p(φ)              filter
//!        |  ρ_a^b(φ)            rename column a to b
//!        |  π̃_c(φ)              antiprojection (drop column c)
//!        |  φ ⋈ ψ               natural join
//!        |  φ ∪ ψ               union
//!        |  φ ▷ ψ               antijoin
//!        |  μ(X = φ)            fixpoint
//! ```
//!
//! Provided here:
//!
//! * the data model ([`value`], [`schema`], [`relation`]): relations are sets
//!   of tuples mapping column names to values;
//! * the term language ([`term`]) with builder helpers;
//! * static analysis ([`analysis`]): free variables, the `F_cond` conditions
//!   (positive / linear / non-mutually-recursive), decomposition of a fixpoint
//!   body into constant part `R` and variable part `φ`, and the *stabilizer*
//!   (the set of columns left unchanged by the recursive step — the key to
//!   both filter pushing and the `P_plw` distributed plan);
//! * centralized evaluation ([`eval`]): naive and semi-naive (Algorithm 1)
//!   fixpoint computation;
//! * a named-relation [`catalog`] with string interning.
//!
//! Higher layers build on this: `mura-rewrite` (logical optimization),
//! `mura-dist` (distributed physical plans), `mura-ucrpq` (query frontend).

pub mod analysis;
pub mod cancel;
pub mod catalog;
pub mod crc;
pub mod error;
pub mod eval;
pub mod fxhash;
pub mod index;
pub mod kernel;
pub mod mem;
pub mod relation;
pub mod schema;
pub mod sql;
pub mod term;
pub mod value;

pub use cancel::CancellationToken;
pub use catalog::{Database, Dictionary};
pub use crc::{crc32, Crc32};
pub use error::{MuraError, Result};
pub use eval::{eval, eval_naive_fixpoints, EvalStats, Evaluator};
pub use index::{JoinIndex, KeyIndex};
pub use kernel::{kernel_stats, KernelSnapshot, KernelStats};
pub use mem::{mem_gauge, rel_bytes, MemCharge, MemGauge};
pub use relation::{Relation, Row};
pub use schema::Schema;
pub use term::{term_key, Pred, Term};
pub use value::{Sym, Value};
