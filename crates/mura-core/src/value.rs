//! Values and interned symbols.
//!
//! μ-RA tuples map column names to values. Values in graph workloads are
//! overwhelmingly node identifiers and interned strings (labels, constants
//! such as `Japan`), so [`Value`] is a compact `Copy` enum: 64-bit integers
//! and interned symbols. Strings are interned once in a
//! [`Dictionary`](crate::catalog::Dictionary) and referenced by [`Sym`].

use std::fmt;

/// An interned string: index into a [`Dictionary`](crate::catalog::Dictionary).
///
/// `Sym` is used for column names, relation names, recursion variable names
/// and string-valued tuple fields. Two `Sym`s from the same dictionary are
/// equal iff their strings are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// Raw index of this symbol in its dictionary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A tuple field value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit integer, used for graph node identifiers.
    Int(i64),
    /// Interned string (named constants such as `Japan`, RDF IRIs, …).
    Str(Sym),
}

impl Value {
    /// Convenience constructor for node identifiers.
    #[inline]
    pub fn node(id: u64) -> Self {
        Value::Int(id as i64)
    }

    /// Returns the integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Str(_) => None,
        }
    }

    /// Returns the symbol payload, if this is a `Str`.
    #[inline]
    pub fn as_sym(self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Self {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small() {
        // Hot type: rows are slices of Value. Keep it two words max.
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(-7i64), Value::Int(-7));
        assert_eq!(Value::from(Sym(4)), Value::Str(Sym(4)));
        assert_eq!(Value::node(9), Value::Int(9));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_sym(), None);
        assert_eq!(Value::Str(Sym(2)).as_sym(), Some(Sym(2)));
        assert_eq!(Value::Str(Sym(2)).as_int(), None);
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![Value::Str(Sym(1)), Value::Int(2), Value::Int(1), Value::Str(Sym(0))];
        vs.sort();
        assert_eq!(vs, vec![Value::Int(1), Value::Int(2), Value::Str(Sym(0)), Value::Str(Sym(1))]);
    }
}
