//! Relation schemas.
//!
//! A schema is the set of column names of a relation. μ-RA's data model is
//! *named*: joins are natural joins on common column names, renames change
//! a column's name. We store schemas as a sorted `Vec<Sym>` so that rows of
//! equal relations have a canonical field order; all physical operators
//! compute positional permutations from schemas once, then work on positions.

use crate::value::Sym;
use std::fmt;

/// A sorted, duplicate-free list of column names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema(Vec<Sym>);

impl Schema {
    /// Builds a schema from columns; sorts and checks for duplicates.
    ///
    /// # Panics
    /// Panics if a column appears twice (a relation cannot have two columns
    /// with the same name).
    pub fn new(mut cols: Vec<Sym>) -> Self {
        cols.sort_unstable();
        for w in cols.windows(2) {
            assert!(w[0] != w[1], "duplicate column {:?} in schema", w[0]);
        }
        Schema(cols)
    }

    /// The empty schema (schema of the 0-ary relation).
    pub fn empty() -> Self {
        Schema(Vec::new())
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True if there are no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sorted column list.
    #[inline]
    pub fn columns(&self) -> &[Sym] {
        &self.0
    }

    /// Position of column `c` in rows of this schema.
    #[inline]
    pub fn position(&self, c: Sym) -> Option<usize> {
        self.0.binary_search(&c).ok()
    }

    /// True if the schema contains column `c`.
    #[inline]
    pub fn contains(&self, c: Sym) -> bool {
        self.position(c).is_some()
    }

    /// Columns present in both schemas (sorted).
    pub fn intersection(&self, other: &Schema) -> Vec<Sym> {
        self.0.iter().copied().filter(|c| other.contains(*c)).collect()
    }

    /// Union of both schemas as a new schema.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut cols = self.0.clone();
        for &c in &other.0 {
            if !self.contains(c) {
                cols.push(c);
            }
        }
        Schema::new(cols)
    }

    /// Schema with column `from` renamed to `to`.
    ///
    /// Returns `None` if `from` is absent or `to` already present.
    pub fn rename(&self, from: Sym, to: Sym) -> Option<Schema> {
        if !self.contains(from) || self.contains(to) || from == to {
            return None;
        }
        let cols = self.0.iter().map(|&c| if c == from { to } else { c }).collect();
        Some(Schema::new(cols))
    }

    /// Schema with the given columns removed.
    ///
    /// Returns `None` if any of `drop` is absent.
    pub fn antiproject(&self, drop: &[Sym]) -> Option<Schema> {
        for &d in drop {
            if !self.contains(d) {
                return None;
            }
        }
        Some(Schema(self.0.iter().copied().filter(|c| !drop.contains(c)).collect()))
    }

    /// For each column of `self`, its position in `other` (if present).
    /// Used to compute row projections between schemas.
    pub fn positions_in(&self, other: &Schema) -> Vec<Option<usize>> {
        self.0.iter().map(|&c| other.position(c)).collect()
    }
}

impl FromIterator<Sym> for Schema {
    fn from_iter<I: IntoIterator<Item = Sym>>(iter: I) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Schema {
        Schema::new(ids.iter().map(|&i| Sym(i)).collect())
    }

    #[test]
    fn sorted_and_positions() {
        let sch = s(&[3, 1, 2]);
        assert_eq!(sch.columns(), &[Sym(1), Sym(2), Sym(3)]);
        assert_eq!(sch.position(Sym(2)), Some(1));
        assert_eq!(sch.position(Sym(9)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        s(&[1, 1]);
    }

    #[test]
    fn rename_ok_and_err() {
        let sch = s(&[1, 2]);
        assert_eq!(sch.rename(Sym(1), Sym(5)), Some(s(&[5, 2])));
        assert_eq!(sch.rename(Sym(9), Sym(5)), None, "absent source");
        assert_eq!(sch.rename(Sym(1), Sym(2)), None, "target collision");
        assert_eq!(sch.rename(Sym(1), Sym(1)), None, "self rename");
    }

    #[test]
    fn antiproject_and_set_ops() {
        let sch = s(&[1, 2, 3]);
        assert_eq!(sch.antiproject(&[Sym(2)]), Some(s(&[1, 3])));
        assert_eq!(sch.antiproject(&[Sym(7)]), None);
        assert_eq!(sch.intersection(&s(&[2, 3, 4])), vec![Sym(2), Sym(3)]);
        assert_eq!(sch.union(&s(&[3, 4])), s(&[1, 2, 3, 4]));
    }

    #[test]
    fn positions_in_other() {
        let a = s(&[1, 3]);
        let b = s(&[1, 2, 3]);
        assert_eq!(a.positions_in(&b), vec![Some(0), Some(2)]);
        assert_eq!(b.positions_in(&a), vec![Some(0), None, Some(1)]);
    }
}
