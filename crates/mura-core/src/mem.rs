//! Process-wide byte-level memory accounting.
//!
//! The paper's evaluation shows competitor systems *failing* with
//! out-of-memory aborts on large recursive queries instead of degrading.
//! To fail typed (and observable) rather than fall over, the fixpoint
//! drivers charge an estimate of every materialized batch against two
//! accounts:
//!
//! * a per-query byte budget (`Budget.max_bytes` in `mura-dist`), which
//!   turns a breach into [`MuraError::MemoryExceeded`]
//!   (crate::error::MuraError::MemoryExceeded), and
//! * the process-wide [`MemGauge`] singleton here, which tracks the live
//!   working-set across *all* in-flight queries so a serving layer can make
//!   admission decisions against the real watermark.
//!
//! Accounting is estimate-based, not allocator-hooked: a batch of `rows`
//! tuples of arity `a` is charged [`rel_bytes`]`(rows, a)` =
//! `rows × a × size_of::<Value>()` bytes. The estimate is deterministic
//! (identical across same-seed chaos runs) and deliberately ignores
//! `Arc`-sharing so copy-on-write relations are never double-charged.
//!
//! Charges are batch-granular — one atomic per superstep, not per row — so
//! the hot kernels stay allocation- and contention-free. The RAII
//! [`MemCharge`] guard ties a charge's lifetime to the owning working set:
//! dropping the guard (normally or during unwinding after a worker panic)
//! releases the bytes, keeping the gauge balanced even on failure paths.

use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide gauge of charged (live) bytes plus the high-water mark.
///
/// All methods are lock-free and callable from any worker thread.
#[derive(Debug)]
pub struct MemGauge {
    current: AtomicU64,
    high_water: AtomicU64,
}

impl MemGauge {
    /// Charges `bytes` and returns the new current total, updating the
    /// high-water mark.
    pub fn add(&self, bytes: u64) -> u64 {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Releases `bytes`. Saturates at zero so a stray double-release can
    /// never wrap the gauge.
    pub fn sub(&self, bytes: u64) {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Currently charged bytes across all live queries.
    pub fn current_bytes(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest value [`current_bytes`](Self::current_bytes) has reached.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// The process-wide gauge singleton.
pub fn mem_gauge() -> &'static MemGauge {
    static GAUGE: MemGauge = MemGauge { current: AtomicU64::new(0), high_water: AtomicU64::new(0) };
    &GAUGE
}

/// Estimated footprint of `rows` tuples of the given arity: payload values
/// only, `Arc`/hash overhead excluded so sharing is never double-counted.
///
/// Saturates at `u64::MAX`: callers feed it cost-model cardinalities that
/// can be astronomically large (joins multiply), and an oversized estimate
/// must clamp — and be shed by any byte gate — rather than wrap past it.
#[inline]
pub fn rel_bytes(rows: u64, arity: usize) -> u64 {
    rows.saturating_mul(arity as u64).saturating_mul(std::mem::size_of::<Value>() as u64)
}

/// RAII charge against the process gauge.
///
/// Holds the number of bytes currently attributed to one working set (e.g.
/// a fixpoint's accumulator). [`grow_to`](Self::grow_to) re-charges as the
/// set grows; dropping the guard releases everything — including during
/// panic unwinding, so injected worker failures cannot leak gauge bytes.
#[derive(Debug, Default)]
pub struct MemCharge {
    bytes: u64,
}

impl MemCharge {
    /// An empty charge (zero bytes held).
    pub fn new() -> Self {
        MemCharge::default()
    }

    /// Raises the held charge to `bytes` (no-op if already at or above).
    pub fn grow_to(&mut self, bytes: u64) {
        if bytes > self.bytes {
            mem_gauge().add(bytes - self.bytes);
            self.bytes = bytes;
        }
    }

    /// Bytes currently held by this guard.
    pub fn held(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        if self.bytes > 0 {
            mem_gauge().sub(self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_round_trip() {
        let g = mem_gauge();
        let before = g.current_bytes();
        g.add(1024);
        assert!(g.current_bytes() >= before + 1024);
        assert!(g.high_water_bytes() >= before + 1024);
        g.sub(1024);
    }

    #[test]
    fn sub_saturates() {
        let g = MemGauge { current: AtomicU64::new(10), high_water: AtomicU64::new(10) };
        g.sub(100);
        assert_eq!(g.current_bytes(), 0);
    }

    #[test]
    fn rel_bytes_scales_with_arity() {
        assert_eq!(rel_bytes(10, 2), 10 * 2 * std::mem::size_of::<Value>() as u64);
        assert_eq!(rel_bytes(0, 5), 0);
    }

    #[test]
    fn rel_bytes_saturates_instead_of_wrapping() {
        // A 3-way join of 1e6-row relations estimates ~1e18 rows; the byte
        // estimate must clamp so a watermark gate always sheds it.
        assert_eq!(rel_bytes(u64::MAX, 3), u64::MAX);
        assert_eq!(rel_bytes(1 << 62, 4), u64::MAX);
    }

    #[test]
    fn charge_guard_releases_on_drop() {
        // A deliberately huge charge so concurrent tests' small charges
        // cannot confound the release assertion.
        const BIG: u64 = 1 << 40;
        let g = mem_gauge();
        let before = g.current_bytes();
        {
            let mut c = MemCharge::new();
            c.grow_to(BIG);
            c.grow_to(100); // shrink request is a no-op
            assert_eq!(c.held(), BIG);
            assert!(g.current_bytes() >= before + BIG);
        }
        assert!(g.current_bytes() < before + BIG / 2, "guard did not release");
        assert!(g.high_water_bytes() >= BIG);
    }
}
