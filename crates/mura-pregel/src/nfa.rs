//! Regular path query → NFA compilation.
//!
//! Alphabet symbols are `(label, direction)`: traversing an edge forward
//! (`a`) or backward (`-a`). Thompson construction with ε transitions,
//! followed by ε-elimination, yields the ε-free automaton the Pregel
//! engine steps through.

use mura_core::{MuraError, Result};
use mura_ucrpq::translate::normalize;
use mura_ucrpq::Path;

/// An alphabet symbol: an edge label traversed forward or backward.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabelDir {
    pub label: String,
    pub inverse: bool,
}

/// An ε-free NFA over [`LabelDir`] symbols.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Number of states (`0..n_states`).
    pub n_states: u32,
    /// Start state.
    pub start: u32,
    /// Accepting states.
    pub accept: Vec<u32>,
    /// Transitions `(from, symbol, to)`.
    pub transitions: Vec<(u32, LabelDir, u32)>,
}

impl Nfa {
    /// Compiles a path expression (normalizing it first). Errors when the
    /// path can match the empty word (same restriction as the μ-RA
    /// frontend).
    pub fn from_path(path: &Path) -> Result<Nfa> {
        let (core, eps) = normalize(path);
        if eps {
            return Err(MuraError::Frontend(format!("path '{path}' can match the empty word")));
        }
        let core = core.ok_or_else(|| {
            MuraError::Frontend(format!("path '{path}' denotes only the empty word"))
        })?;
        let mut b = Builder::default();
        let (s, e) = b.build(&core)?;
        b.eliminate_epsilon(s, e)
    }

    /// Transitions leaving `state`.
    pub fn transitions_from(&self, state: u32) -> impl Iterator<Item = (&LabelDir, u32)> {
        self.transitions.iter().filter(move |(f, _, _)| *f == state).map(|(_, l, t)| (l, *t))
    }

    /// True if `state` accepts.
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accept.contains(&state)
    }

    /// All labels referenced (deduplicated).
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (_, l, _) in &self.transitions {
            if !out.contains(&l.label.as_str()) {
                out.push(&l.label);
            }
        }
        out
    }
}

#[derive(Default)]
struct Builder {
    n: u32,
    labeled: Vec<(u32, LabelDir, u32)>,
    eps: Vec<(u32, u32)>,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        self.n += 1;
        self.n - 1
    }

    /// Thompson fragment `(in, out)` for the (normalized) path.
    fn build(&mut self, p: &Path) -> Result<(u32, u32)> {
        Ok(match p {
            Path::Label(l) => {
                let (s, e) = (self.fresh(), self.fresh());
                self.labeled.push((s, LabelDir { label: l.clone(), inverse: false }, e));
                (s, e)
            }
            Path::Inverse(inner) => {
                let Path::Label(l) = &**inner else {
                    return Err(MuraError::Frontend(
                        "inverse of compound path must be normalized away".into(),
                    ));
                };
                let (s, e) = (self.fresh(), self.fresh());
                self.labeled.push((s, LabelDir { label: l.clone(), inverse: true }, e));
                (s, e)
            }
            Path::Concat(a, b) => {
                let (sa, ea) = self.build(a)?;
                let (sb, eb) = self.build(b)?;
                self.eps.push((ea, sb));
                (sa, eb)
            }
            Path::Alt(a, b) => {
                let (s, e) = (self.fresh(), self.fresh());
                for branch in [a, b] {
                    let (sb, eb) = self.build(branch)?;
                    self.eps.push((s, sb));
                    self.eps.push((eb, e));
                }
                (s, e)
            }
            Path::Plus(inner) => {
                let (si, ei) = self.build(inner)?;
                self.eps.push((ei, si)); // loop back for one-or-more
                (si, ei)
            }
            Path::Star(_) | Path::Optional(_) => {
                return Err(MuraError::Frontend("'*' must be normalized away".into()))
            }
        })
    }

    /// ε-elimination: for every state, labeled edges reachable through ε
    /// paths are added directly; acceptance propagates backwards through ε.
    fn eliminate_epsilon(self, start: u32, end: u32) -> Result<Nfa> {
        let n = self.n as usize;
        // ε-closure by BFS per state (automata here are tiny).
        let mut closure: Vec<Vec<u32>> = (0..n).map(|s| vec![s as u32]).collect();
        for (s, reach) in closure.iter_mut().enumerate() {
            let mut stack = vec![s as u32];
            while let Some(v) = stack.pop() {
                for &(f, t) in &self.eps {
                    if f == v && !reach.contains(&t) {
                        reach.push(t);
                        stack.push(t);
                    }
                }
            }
        }
        let mut transitions = Vec::new();
        for (s, reach) in closure.iter().enumerate() {
            for &c in reach {
                for (f, l, t) in &self.labeled {
                    if *f == c {
                        let tr = (s as u32, l.clone(), *t);
                        if !transitions.contains(&tr) {
                            transitions.push(tr);
                        }
                    }
                }
            }
        }
        let accept: Vec<u32> =
            (0..n as u32).filter(|&s| closure[s as usize].contains(&end)).collect();
        Ok(Nfa { n_states: self.n, start, accept, transitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_ucrpq::parse_ucrpq;

    fn nfa_of(path_text: &str) -> Nfa {
        let q = parse_ucrpq(&format!("?x, ?y <- ?x {path_text} ?y")).unwrap();
        Nfa::from_path(&q.branches[0].atoms[0].path).unwrap()
    }

    /// Simulates the NFA on a word of (label, inverse) symbols.
    fn accepts(nfa: &Nfa, word: &[(&str, bool)]) -> bool {
        let mut states = vec![nfa.start];
        for (label, inv) in word {
            let mut next = Vec::new();
            for &s in &states {
                for (l, t) in nfa.transitions_from(s) {
                    if l.label == *label && l.inverse == *inv && !next.contains(&t) {
                        next.push(t);
                    }
                }
            }
            states = next;
            if states.is_empty() {
                return false;
            }
        }
        states.iter().any(|&s| nfa.is_accepting(s))
    }

    #[test]
    fn single_label() {
        let n = nfa_of("a");
        assert!(accepts(&n, &[("a", false)]));
        assert!(!accepts(&n, &[("b", false)]));
        assert!(!accepts(&n, &[]));
        assert!(!accepts(&n, &[("a", false), ("a", false)]));
    }

    #[test]
    fn concat_and_alt() {
        let n = nfa_of("a/(b|c)");
        assert!(accepts(&n, &[("a", false), ("b", false)]));
        assert!(accepts(&n, &[("a", false), ("c", false)]));
        assert!(!accepts(&n, &[("a", false)]));
    }

    #[test]
    fn plus_loops() {
        let n = nfa_of("a+");
        assert!(accepts(&n, &[("a", false)]));
        assert!(accepts(&n, &[("a", false), ("a", false), ("a", false)]));
        assert!(!accepts(&n, &[]));
    }

    #[test]
    fn inverse_symbols() {
        let n = nfa_of("(a/-a)+");
        assert!(accepts(&n, &[("a", false), ("a", true)]));
        assert!(accepts(&n, &[("a", false), ("a", true), ("a", false), ("a", true)]));
        assert!(!accepts(&n, &[("a", false), ("a", false)]));
    }

    #[test]
    fn compound_expression() {
        let n = nfa_of("a/b+/c");
        assert!(accepts(&n, &[("a", false), ("b", false), ("c", false)]));
        assert!(accepts(&n, &[("a", false), ("b", false), ("b", false), ("c", false)]));
        assert!(!accepts(&n, &[("a", false), ("c", false)]));
    }

    #[test]
    fn labels_listing() {
        let n = nfa_of("a/(b|a)+");
        let mut ls = n.labels();
        ls.sort();
        assert_eq!(ls, vec!["a", "b"]);
    }
}
