//! # mura-pregel — vertex-centric BSP baseline (GraphX-style)
//!
//! The paper compares Dist-μ-RA against GraphX by compiling UCRPQs to
//! Pregel programs (§V-C): the regular expression is traversed left to
//! right while messages carry, per vertex, the set of *(origin,
//! automaton-state)* pairs of partial matches that reached it. This crate
//! rebuilds that baseline:
//!
//! * [`nfa`] — a regular-path-query → NFA compiler (labels and inverse
//!   labels as alphabet symbols, ε-elimination);
//! * [`engine`] — a bulk-synchronous Pregel runtime over hash-partitioned
//!   vertices with per-superstep message accounting and message budgets
//!   (GraphX's crashes in the paper are out-of-memory blow-ups of exactly
//!   these message sets).
//!
//! The baseline inherits GraphX's structural weaknesses faithfully:
//! selections are only exploited at the *start* of the traversal (a
//! constant left endpoint seeds a single origin; a constant right endpoint
//! is filtered only at the end), and unanchored queries flood the graph
//! with `O(V)` origins.

pub mod engine;
pub mod nfa;

pub use engine::{PregelConfig, PregelEngine, PregelOutput, PregelStats};
pub use nfa::Nfa;
