//! The BSP (Pregel) runtime and UCRPQ evaluation on top of it.
//!
//! Supersteps proceed in lockstep across hash-partitioned vertices: each
//! vertex accumulates the *(origin, NFA-state)* pairs that reached it,
//! forwards newly discovered pairs along matching edges, and reports a
//! result whenever an accepting state arrives. Conjunctive queries are
//! evaluated atom by atom and joined on the driver, as one would implement
//! them over GraphX.

use crate::nfa::Nfa;
use mura_core::fxhash::{FxHashMap, FxHashSet};
use mura_core::{Database, MuraError, Relation, Result, Schema, Value};
use mura_ucrpq::{parse_ucrpq, Atom, Endpoint, Ucrpq};
use std::time::{Duration, Instant};

/// Pregel runtime configuration.
#[derive(Debug, Clone)]
pub struct PregelConfig {
    /// Number of workers (vertex partitions).
    pub workers: usize,
    /// Abort when total sent messages exceed this (models GraphX running
    /// out of memory on message/state blow-up).
    pub max_messages: Option<u64>,
    /// Hard cap on supersteps (defensive bound).
    pub max_supersteps: u64,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
}

impl Default for PregelConfig {
    fn default() -> Self {
        PregelConfig { workers: 4, max_messages: None, max_supersteps: 100_000, timeout: None }
    }
}

/// Counters reported after a run.
#[derive(Debug, Clone, Default)]
pub struct PregelStats {
    /// Supersteps executed (across all atoms of the query).
    pub supersteps: u64,
    /// Messages sent.
    pub messages: u64,
}

/// Result of a Pregel query evaluation.
#[derive(Debug, Clone)]
pub struct PregelOutput {
    pub relation: Relation,
    pub wall: Duration,
    pub stats: PregelStats,
}

/// Per-label adjacency (forward and reverse).
struct Adjacency {
    forward: FxHashMap<String, FxHashMap<u64, Vec<u64>>>,
    reverse: FxHashMap<String, FxHashMap<u64, Vec<u64>>>,
    vertices: Vec<u64>,
}

/// GraphX-style query engine.
pub struct PregelEngine {
    db: Database,
    config: PregelConfig,
    adj: Adjacency,
}

impl PregelEngine {
    /// Builds the engine (materializes per-label adjacency once).
    pub fn new(db: Database, config: PregelConfig) -> Self {
        let adj = build_adjacency(&db);
        PregelEngine { db, config, adj }
    }

    /// The database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Parses and evaluates a UCRPQ.
    pub fn run_ucrpq(&self, query: &str) -> Result<PregelOutput> {
        let q = parse_ucrpq(query)?;
        self.run(&q)
    }

    /// Evaluates a parsed UCRPQ.
    pub fn run(&self, q: &Ucrpq) -> Result<PregelOutput> {
        let start = Instant::now();
        let deadline = self.config.timeout.map(|t| start + t);
        let mut stats = PregelStats::default();
        let mut result: Option<Relation> = None;
        for branch in &q.branches {
            // Evaluate each atom with a Pregel run, join on the driver.
            let mut branch_rel: Option<Relation> = None;
            for atom in &branch.atoms {
                let rel = self.run_atom(atom, &mut stats, deadline)?;
                branch_rel = Some(match branch_rel {
                    None => rel,
                    Some(acc) => acc.join(&rel),
                });
            }
            let mut branch_rel =
                branch_rel.ok_or_else(|| MuraError::Frontend("empty query body".into()))?;
            // Project to the head.
            let keep: Vec<mura_core::Sym> = branch
                .head
                .iter()
                .filter_map(|h| self.db.dict().lookup(&format!("?{h}")))
                .collect();
            let drop: Vec<mura_core::Sym> = branch_rel
                .schema()
                .columns()
                .iter()
                .copied()
                .filter(|c| !keep.contains(c))
                .collect();
            if !drop.is_empty() {
                branch_rel = branch_rel.antiproject(&drop);
            }
            result = Some(match result {
                None => branch_rel,
                Some(acc) => acc.union(&branch_rel),
            });
        }
        Ok(PregelOutput {
            relation: result.ok_or_else(|| MuraError::Frontend("empty query".into()))?,
            wall: start.elapsed(),
            stats,
        })
    }

    fn resolve_const(&self, name: &str) -> Result<Value> {
        if let Some(v) = self.db.constant(name) {
            return Ok(v);
        }
        name.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| MuraError::Frontend(format!("unknown constant '{name}'")))
    }

    /// One Pregel run for a single path atom.
    fn run_atom(
        &self,
        atom: &Atom,
        stats: &mut PregelStats,
        deadline: Option<Instant>,
    ) -> Result<Relation> {
        let nfa = Nfa::from_path(&atom.path)?;
        for l in nfa.labels() {
            if self.db.relation_by_name(l).is_none() {
                return Err(MuraError::Frontend(format!("unknown edge label '{l}'")));
            }
        }
        // Origins: a constant left endpoint seeds a single origin (the one
        // selection GraphX-style traversal can exploit); otherwise every
        // vertex starts a traversal.
        let origins: Vec<u64> = match &atom.left {
            Endpoint::Const(c) => {
                let v = self.resolve_const(c)?;
                match v.as_int() {
                    Some(i) if i >= 0 => vec![i as u64],
                    _ => {
                        return Err(MuraError::Frontend(format!("constant '{c}' is not a node id")))
                    }
                }
            }
            Endpoint::Var(_) => self.adj.vertices.clone(),
        };
        let pairs = self.bsp(&nfa, &origins, stats, deadline)?;
        // Build the atom relation from (origin, reached) result pairs.
        self.pairs_to_relation(atom, pairs)
    }

    /// The BSP loop. Returns the accepted `(origin, vertex)` pairs.
    fn bsp(
        &self,
        nfa: &Nfa,
        origins: &[u64],
        stats: &mut PregelStats,
        deadline: Option<Instant>,
    ) -> Result<FxHashSet<(u64, u64)>> {
        let n = self.config.workers;
        let part_of = |v: u64| (mura_core::fxhash::hash_u64(v) as usize) % n;
        // Vertex states: per partition, vertex → set of (origin, state).
        let mut states: Vec<FxHashMap<u64, FxHashSet<(u64, u32)>>> =
            (0..n).map(|_| FxHashMap::default()).collect();
        let mut results: FxHashSet<(u64, u64)> = FxHashSet::default();
        // Initial messages: origins enter at the start state.
        let mut inboxes: Vec<Vec<(u64, u64, u32)>> = (0..n).map(|_| Vec::new()).collect();
        for &o in origins {
            inboxes[part_of(o)].push((o, o, nfa.start));
        }
        while inboxes.iter().any(|i| !i.is_empty()) {
            stats.supersteps += 1;
            if stats.supersteps > self.config.max_supersteps {
                return Err(MuraError::Other("superstep bound exceeded".into()));
            }
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return Err(MuraError::Timeout { millis: 0 });
                }
            }
            // Each partition processes its inbox in parallel.
            struct PartOut {
                outbox: Vec<(u64, u64, u32)>,
                accepted: Vec<(u64, u64)>,
                sent: u64,
            }
            let adj = &self.adj;
            let outs: Vec<PartOut> = std::thread::scope(|s| {
                let handles: Vec<_> = states
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .map(|(part_states, inbox)| {
                        s.spawn(move || {
                            let mut out =
                                PartOut { outbox: Vec::new(), accepted: Vec::new(), sent: 0 };
                            for (v, o, st) in inbox.drain(..) {
                                let seen = part_states.entry(v).or_default();
                                if !seen.insert((o, st)) {
                                    continue;
                                }
                                if nfa.is_accepting(st) {
                                    out.accepted.push((o, v));
                                }
                                for (l, t) in nfa.transitions_from(st) {
                                    let neighbors = if l.inverse {
                                        adj.reverse.get(&l.label).and_then(|m| m.get(&v))
                                    } else {
                                        adj.forward.get(&l.label).and_then(|m| m.get(&v))
                                    };
                                    if let Some(ns) = neighbors {
                                        for &w in ns {
                                            out.outbox.push((w, o, t));
                                            out.sent += 1;
                                        }
                                    }
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            // Route outboxes, account messages, enforce the budget.
            let mut next: Vec<Vec<(u64, u64, u32)>> = (0..n).map(|_| Vec::new()).collect();
            for out in outs {
                stats.messages += out.sent;
                results.extend(out.accepted);
                for msg in out.outbox {
                    next[part_of(msg.0)].push(msg);
                }
            }
            if let Some(max) = self.config.max_messages {
                if stats.messages > max {
                    return Err(MuraError::ResourceExhausted {
                        what: "pregel messages",
                        limit: max,
                        reached: stats.messages,
                    });
                }
            }
            inboxes = next;
        }
        Ok(results)
    }

    fn pairs_to_relation(&self, atom: &Atom, pairs: FxHashSet<(u64, u64)>) -> Result<Relation> {
        // Columns named like the μ-RA frontend (`?x`), resolved against the
        // dictionary; unseen variables must be interned by a prior
        // translation or direct lookup — fall back to a deterministic probe.
        let col = |v: &str| -> Result<mura_core::Sym> {
            self.db.dict().lookup(&format!("?{v}")).ok_or_else(|| {
                MuraError::Frontend(format!(
                    "variable ?{v} missing from dictionary; run through PregelEngine::run_ucrpq"
                ))
            })
        };
        match (&atom.left, &atom.right) {
            (Endpoint::Var(l), Endpoint::Var(r)) if l == r => {
                let c = col(l)?;
                let schema = Schema::new(vec![c]);
                Ok(Relation::from_rows(
                    schema,
                    pairs
                        .into_iter()
                        .filter(|(o, v)| o == v)
                        .map(|(o, _)| vec![Value::node(o)].into_boxed_slice()),
                ))
            }
            (Endpoint::Var(l), Endpoint::Var(r)) => {
                let cl = col(l)?;
                let cr = col(r)?;
                Ok(Relation::from_pairs(cl, cr, pairs))
            }
            (Endpoint::Const(_), Endpoint::Var(r)) => {
                let cr = col(r)?;
                let schema = Schema::new(vec![cr]);
                Ok(Relation::from_rows(
                    schema,
                    pairs.into_iter().map(|(_, v)| vec![Value::node(v)].into_boxed_slice()),
                ))
            }
            (Endpoint::Var(l), Endpoint::Const(c)) => {
                let target = self.resolve_const(c)?;
                let cl = col(l)?;
                let schema = Schema::new(vec![cl]);
                Ok(Relation::from_rows(
                    schema,
                    pairs
                        .into_iter()
                        .filter(|(_, v)| Value::node(*v) == target)
                        .map(|(o, _)| vec![Value::node(o)].into_boxed_slice()),
                ))
            }
            (Endpoint::Const(_), Endpoint::Const(c2)) => {
                let target = self.resolve_const(c2)?;
                let found = pairs.iter().any(|(_, v)| Value::node(*v) == target);
                let mut rel = Relation::new(Schema::empty());
                if found {
                    rel.insert(Vec::new().into_boxed_slice());
                }
                Ok(rel)
            }
        }
    }
}

/// Intern `?v` columns for all variables of a query (the engine resolves
/// them at result construction time).
pub fn intern_query_vars(q: &Ucrpq, db: &mut Database) {
    for v in q.body_vars() {
        db.intern(&format!("?{v}"));
    }
}

fn build_adjacency(db: &Database) -> Adjacency {
    let mut forward: FxHashMap<String, FxHashMap<u64, Vec<u64>>> = FxHashMap::default();
    let mut reverse: FxHashMap<String, FxHashMap<u64, Vec<u64>>> = FxHashMap::default();
    let mut vertices: FxHashSet<u64> = FxHashSet::default();
    let (Some(src), Some(dst)) = (db.dict().lookup("src"), db.dict().lookup("dst")) else {
        return Adjacency { forward, reverse, vertices: Vec::new() };
    };
    for (name, rel) in db.relations() {
        let schema = rel.schema();
        let (Some(ps), Some(pd)) = (schema.position(src), schema.position(dst)) else {
            continue;
        };
        if schema.arity() != 2 {
            continue;
        }
        let label = db.dict().resolve(name).to_string();
        let f = forward.entry(label.clone()).or_default();
        let r = reverse.entry(label).or_default();
        for row in rel.iter() {
            let (Some(s), Some(d)) = (row[ps].as_int(), row[pd].as_int()) else { continue };
            let (s, d) = (s as u64, d as u64);
            f.entry(s).or_default().push(d);
            r.entry(d).or_default().push(s);
            vertices.insert(s);
            vertices.insert(d);
        }
    }
    let mut vertices: Vec<u64> = vertices.into_iter().collect();
    vertices.sort_unstable();
    Adjacency { forward, reverse, vertices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::eval;
    use mura_datagen::SplitMix64;
    use mura_datagen::{erdos_renyi, with_random_labels};

    fn db() -> Database {
        let mut rng = SplitMix64::seed_from_u64(33);
        let g = erdos_renyi(120, 0.02, 17);
        let lg = with_random_labels(&g, 2, &mut rng);
        let mut db = lg.to_database();
        db.bind_constant("C", Value::node(3));
        db
    }

    /// Reference evaluation through the μ-RA route (also interns ?cols).
    fn reference(q: &str, db: &mut Database) -> Relation {
        let parsed = parse_ucrpq(q).unwrap();
        let t = mura_ucrpq::to_mura(&parsed, db).unwrap();
        eval(&t, db).unwrap()
    }

    fn check(q: &str) {
        let mut d = db();
        let expected = reference(q, &mut d);
        let engine = PregelEngine::new(d, PregelConfig::default());
        let out = engine.run_ucrpq(q).unwrap();
        assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "pregel diverged on {q}");
    }

    #[test]
    fn closure_matches_mura() {
        check("?x, ?y <- ?x a1+ ?y");
    }

    #[test]
    fn anchored_left() {
        check("?y <- C a1+ ?y");
    }

    #[test]
    fn anchored_right() {
        check("?x <- ?x a1+ C");
    }

    #[test]
    fn inverse_and_alt() {
        check("?x, ?y <- ?x (a1/-a1) ?y");
        check("?x, ?y <- ?x (a1|a2)+ ?y");
    }

    #[test]
    fn concat_of_closures() {
        check("?x, ?y <- ?x a1+/a2+ ?y");
    }

    #[test]
    fn conjunction_joins() {
        check("?x, ?z <- ?x a1 ?y, ?y a2 ?z");
    }

    #[test]
    fn left_anchor_sends_fewer_messages() {
        let mut d = db();
        let _ = reference("?y <- C a1+ ?y", &mut d);
        let _ = reference("?x, ?y <- ?x a1+ ?y", &mut d);
        let engine = PregelEngine::new(d, PregelConfig::default());
        let anchored = engine.run_ucrpq("?y <- C a1+ ?y").unwrap();
        let unanchored = engine.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        assert!(
            anchored.stats.messages < unanchored.stats.messages,
            "anchoring must reduce message volume ({} vs {})",
            anchored.stats.messages,
            unanchored.stats.messages
        );
    }

    #[test]
    fn message_budget_aborts() {
        let mut d = db();
        let _ = reference("?x, ?y <- ?x a1+ ?y", &mut d);
        let engine =
            PregelEngine::new(d, PregelConfig { max_messages: Some(10), ..Default::default() });
        let err = engine.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap_err();
        assert!(matches!(err, MuraError::ResourceExhausted { .. }));
    }

    #[test]
    fn same_var_endpoints() {
        // ?x (a1/-a1)+ ?x : nodes related to themselves (always true for
        // nodes with an outgoing a1 edge, via there-and-back).
        let mut d = db();
        let expected = reference("?x <- ?x (a1/-a1) ?x", &mut d);
        let engine = PregelEngine::new(d, PregelConfig::default());
        let out = engine.run_ucrpq("?x <- ?x (a1/-a1) ?x").unwrap();
        assert_eq!(out.relation.sorted_rows(), expected.sorted_rows());
    }
}
