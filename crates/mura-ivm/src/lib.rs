//! # mura-ivm — incremental view maintenance for recursive μ-RA views
//!
//! Turns a cached fixpoint result into a *maintained materialized view*:
//! given an edge-level delta over the base relations, this crate computes
//! per-fixpoint **resume state** `(acc, delta)` from which the distributed
//! drivers (`mura-dist`) continue their ordinary semi-naive loop instead of
//! recomputing from the seed.
//!
//! Two maintenance strategies, chosen per fixpoint by the shape of the
//! batch:
//!
//! * **Insertions** propagate semi-naively. The old total `T = lfp(F)` is
//!   a sound starting accumulator because `F' (the post-delta operator) is
//!   monotone in the base relations, so `T ⊆ lfp(F')`. The one-step
//!   maintenance frontier is computed by the classic per-occurrence delta
//!   rewrite: for every occurrence `k` of a changed relation in a recursive
//!   branch, evaluate the branch with occurrence `k` replaced by the
//!   inserted rows, occurrences before `k` by the old values, occurrences
//!   after `k` by the new values, and the recursion variable by `T`. The
//!   union over all `k` covers `F'(T) \ F(T)` because every μ-RA operator
//!   except antijoin-RHS distributes over union in each argument.
//!
//! * **Deletions** use *DRed* (delete-and-rederive, Gupta–Mumick–Subrahmanian):
//!   over-delete everything derivable from a deleted fact — the same
//!   per-occurrence rewrite with the deleted rows, iterated through the
//!   recursive branches against the **old** base values — then keep the
//!   survivors `S = T \ D` (every survivor has a deletion-free derivation,
//!   so `S ⊆ lfp(F')`) and rederive with one full step over the **new**
//!   base values: `frontier = φ'(S) \ S`. Computing the rederivation step
//!   in full (rather than intersecting with `D`) makes the same path
//!   correct for mixed insert+delete batches.
//!
//! The resume state is keyed by [`mura_core::term_key`] of each `Fix`
//! subterm — the same key under which the serving layer captures fixpoint
//! totals — and handed to `ExecConfig::resume`; the driver folds the
//! (recomputed) seed in as `acc₀ = acc ∪ seed ∪ delta`,
//! `delta₀ = delta ∪ (seed \ acc)`.
//!
//! Maintenance **falls back to full recomputation** (with a typed reason)
//! when the rewrite would be unsound or impossible:
//!
//! * a changed relation occurs on the right-hand side of an antijoin
//!   inside a fixpoint's subtree (non-monotone in the change);
//! * a fixpoint nested inside an affected fixpoint reads a changed
//!   relation (μ does not distribute over union in its seed, so the
//!   per-occurrence rewrite under-approximates) — or, for batches with
//!   deletions, any nested fixpoint at all (the over-deletion must cover
//!   const branches too);
//! * no captured total exists for an affected fixpoint (cold cache).

use mura_core::analysis::decompose_fixpoint;
use mura_core::fxhash::{FxHashMap, FxHashSet};
use mura_core::{eval, term_key, Database, MuraError, Relation, Result, Row, Sym, Term};

/// Insertions and deletions against one base relation. Both sides carry
/// the relation's own schema.
#[derive(Debug, Clone)]
pub struct RelDelta {
    /// Rows to add.
    pub insert: Relation,
    /// Rows to remove.
    pub delete: Relation,
}

impl RelDelta {
    /// An empty delta over `schema`-shaped rows.
    pub fn new(schema: mura_core::Schema) -> Self {
        RelDelta { insert: Relation::new(schema.clone()), delete: Relation::new(schema) }
    }

    /// True when neither side carries rows.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }
}

/// A batch of base-relation mutations, applied atomically as
/// `R ← (R \ delete) ∪ insert` per relation.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// Per-relation deltas.
    pub rels: FxHashMap<Sym, RelDelta>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Records one inserted row for `rel` (creating the entry from the
    /// database schema on first touch). Errors on unknown relations.
    pub fn push_insert(&mut self, db: &Database, rel: Sym, row: Row) -> Result<()> {
        self.entry(db, rel)?.insert.insert(row);
        Ok(())
    }

    /// Records one deleted row for `rel`.
    pub fn push_delete(&mut self, db: &Database, rel: Sym, row: Row) -> Result<()> {
        self.entry(db, rel)?.delete.insert(row);
        Ok(())
    }

    fn entry(&mut self, db: &Database, rel: Sym) -> Result<&mut RelDelta> {
        match self.rels.entry(rel) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let schema =
                    db.relation(rel).ok_or(MuraError::UnboundVariable(rel))?.schema().clone();
                Ok(e.insert(RelDelta::new(schema)))
            }
        }
    }

    /// Drops no-op rows against the current database: inserts that are
    /// already present, deletes of absent rows, and delete/insert pairs of
    /// the same row. After normalization `insert` holds exactly the rows
    /// that will appear and `delete` exactly the rows that will vanish —
    /// the precondition of [`plan_maintenance`]. Relations the batch does
    /// not actually change are removed entirely.
    pub fn normalize(&mut self, db: &Database) -> Result<()> {
        let mut dead = Vec::new();
        for (rel, d) in self.rels.iter_mut() {
            let cur = db.relation(*rel).ok_or(MuraError::UnboundVariable(*rel))?;
            // `(R \ delete) ∪ insert`: a row in both sides ends up present.
            let delete = filter_rows(&d.delete, |row| cur.contains(row) && !d.insert.contains(row));
            let insert = filter_rows(&d.insert, |row| !cur.contains(row));
            d.delete = delete;
            d.insert = insert;
            if d.is_empty() {
                dead.push(*rel);
            }
        }
        for rel in dead {
            self.rels.remove(&rel);
        }
        Ok(())
    }

    /// True when the (normalized) batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(RelDelta::is_empty)
    }

    /// Total rows across both sides of every relation.
    pub fn len(&self) -> usize {
        self.rels.values().map(|d| d.insert.len() + d.delete.len()).sum()
    }

    /// The relations this batch changes.
    pub fn changed(&self) -> FxHashSet<Sym> {
        self.rels.iter().filter(|(_, d)| !d.is_empty()).map(|(r, _)| *r).collect()
    }

    /// Applies the (normalized) batch to `db`, returning
    /// `(inserted, deleted)` row counts. The pre-delta values of the
    /// changed relations are returned so maintenance can evaluate old-base
    /// variants; `Relation` is copy-on-write, so keeping them is cheap.
    pub fn apply(&self, db: &mut Database) -> Result<(u64, u64, FxHashMap<Sym, Relation>)> {
        let mut old = FxHashMap::default();
        let (mut ins, mut del) = (0u64, 0u64);
        for (rel, d) in &self.rels {
            let cur = db.relation(*rel).ok_or(MuraError::UnboundVariable(*rel))?.clone();
            old.insert(*rel, cur.clone());
            let mut next = cur;
            for row in d.delete.iter() {
                if next.remove(row) {
                    del += 1;
                }
            }
            for row in d.insert.iter() {
                if next.insert(row.clone()) {
                    ins += 1;
                }
            }
            db.insert_relation_sym(*rel, next);
        }
        Ok((ins, del, old))
    }
}

fn filter_rows(rel: &Relation, mut keep: impl FnMut(&[mura_core::Value]) -> bool) -> Relation {
    let mut out = Relation::new(rel.schema().clone());
    for row in rel.iter() {
        if keep(row) {
            out.insert(row.clone());
        }
    }
    out
}

/// Why maintenance refused a plan and a full recomputation is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// A changed relation occurs under an antijoin right-hand side inside
    /// a fixpoint: the fixpoint is not monotone in the change.
    NonMonotone,
    /// A nested fixpoint inside an affected fixpoint blocks the
    /// per-occurrence delta rewrite.
    NestedFixpoint,
    /// No captured total for an affected fixpoint (nothing to resume from).
    CacheCold,
    /// The estimated maintenance cost exceeds recomputation (decided by
    /// the caller's cost model, reported through the same channel).
    Cost,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackReason::NonMonotone => "non-monotone",
            FallbackReason::NestedFixpoint => "nested-fixpoint",
            FallbackReason::CacheCold => "cache-cold",
            FallbackReason::Cost => "cost",
        })
    }
}

/// Resume state for one fixpoint: the starting accumulator and frontier of
/// the continued semi-naive loop (`mura-dist` folds the recomputed seed in
/// itself).
#[derive(Debug, Clone)]
pub struct ResumePair {
    /// Starting accumulator — a subset of the new least fixpoint.
    pub acc: Relation,
    /// Starting frontier — the one-step derivations the delta introduced.
    pub delta: Relation,
}

/// A maintainable plan: resume state per `Fix` subterm plus cost signals.
#[derive(Debug, Clone, Default)]
pub struct Maintenance {
    /// Per-fixpoint resume state, keyed by [`term_key`] of the `Fix`
    /// subterm (the key `ExecConfig::resume` expects).
    pub resume: FxHashMap<u64, ResumePair>,
    /// Total frontier rows across all fixpoints — the size of the work the
    /// resumed loops start from (cost signal for the caller).
    pub frontier_rows: u64,
    /// Rows over-deleted by DRed across all fixpoints (these were removed
    /// from accumulators and must be rederived if still implied).
    pub overdeleted_rows: u64,
}

/// The outcome of planning maintenance for one cached query.
#[derive(Debug, Clone)]
pub enum IvmOutcome {
    /// The plan reads none of the changed relations: the cached result is
    /// exact at the new version as-is.
    Unaffected,
    /// Resume state per fixpoint; re-execute the plan with it to obtain
    /// the maintained result (and fresh totals).
    Maintain(Maintenance),
    /// Maintenance would be unsound or impossible: recompute.
    Fallback(FallbackReason),
}

/// Plans incremental maintenance of `plan` under a normalized `batch`.
///
/// * `new_db` — the database **after** the batch was applied;
/// * `old_rels` — pre-delta values of the changed relations (from
///   [`DeltaBatch::apply`]);
/// * `totals` — previously captured fixpoint totals by [`term_key`]
///   (`ExecStats::fix_totals` of the run that produced the cached result).
///
/// The batch must be normalized ([`DeltaBatch::normalize`]): `insert`
/// disjoint from the old value, `delete` a subset of it.
pub fn plan_maintenance(
    plan: &Term,
    new_db: &Database,
    old_rels: &FxHashMap<Sym, Relation>,
    batch: &DeltaBatch,
    totals: &FxHashMap<u64, Relation>,
) -> Result<IvmOutcome> {
    let changed = batch.changed();
    if changed.is_empty() || !plan.free_vars().iter().any(|v| changed.contains(v)) {
        return Ok(IvmOutcome::Unaffected);
    }
    let mut m = Maintenance::default();
    match visit(plan, new_db, old_rels, batch, &changed, totals, &mut m)? {
        Some(reason) => Ok(IvmOutcome::Fallback(reason)),
        None => Ok(IvmOutcome::Maintain(m)),
    }
}

/// Walks the plan, planning every `Fix` subterm (outer and nested — nested
/// fixpoints evaluated while the driver recomputes an outer seed benefit
/// from resume state too). Returns a fallback reason as soon as any
/// affected fixpoint cannot be maintained.
fn visit(
    t: &Term,
    new_db: &Database,
    old_rels: &FxHashMap<Sym, Relation>,
    batch: &DeltaBatch,
    changed: &FxHashSet<Sym>,
    totals: &FxHashMap<u64, Relation>,
    m: &mut Maintenance,
) -> Result<Option<FallbackReason>> {
    if let Term::Fix(x, body) = t {
        if let Some(reason) = plan_fix(t, *x, body, new_db, old_rels, batch, changed, totals, m)? {
            return Ok(Some(reason));
        }
    }
    for c in t.children() {
        if let Some(reason) = visit(c, new_db, old_rels, batch, changed, totals, m)? {
            return Ok(Some(reason));
        }
    }
    Ok(None)
}

#[allow(clippy::too_many_arguments)]
fn plan_fix(
    fix_term: &Term,
    x: Sym,
    body: &Term,
    new_db: &Database,
    old_rels: &FxHashMap<Sym, Relation>,
    batch: &DeltaBatch,
    changed: &FxHashSet<Sym>,
    totals: &FxHashMap<u64, Relation>,
    m: &mut Maintenance,
) -> Result<Option<FallbackReason>> {
    let key = term_key(fix_term);
    let affected = fix_term.free_vars().iter().any(|v| changed.contains(v));
    let Some(total) = totals.get(&key) else {
        // An unaffected fixpoint without a captured total simply gets no
        // resume entry (the driver recomputes it); an affected one cannot
        // be maintained at all.
        return Ok(if affected { Some(FallbackReason::CacheCold) } else { None });
    };
    if !affected {
        // Exact as-is: empty frontier, so the resumed loop terminates
        // immediately with the old total.
        m.resume.insert(
            key,
            ResumePair { acc: total.clone(), delta: Relation::new(total.schema().clone()) },
        );
        return Ok(None);
    }
    if changed_under_antijoin_rhs(fix_term, changed) {
        return Ok(Some(FallbackReason::NonMonotone));
    }
    let reads: Vec<Sym> =
        fix_term.free_vars().iter().copied().filter(|v| changed.contains(v)).collect();
    let has_deletes = reads.iter().any(|r| batch.rels.get(r).is_some_and(|d| !d.delete.is_empty()));
    let (consts, recs) = decompose_fixpoint(x, body)?;
    if has_deletes {
        // DRed needs sound over-deletion through every branch, const
        // branches included; a nested fixpoint anywhere under this one
        // breaks the per-occurrence rewrite.
        if body.fixpoint_count() > 0 {
            return Ok(Some(FallbackReason::NestedFixpoint));
        }
        let (acc, delta, overdeleted) =
            dred(&consts, &recs, x, total, changed, batch, old_rels, new_db)?;
        m.frontier_rows += delta.len() as u64;
        m.overdeleted_rows += overdeleted;
        m.resume.insert(key, ResumePair { acc, delta });
    } else {
        let delta = insert_frontier(&recs, x, total, changed, batch, old_rels, new_db)?;
        let Some(delta) = delta else {
            return Ok(Some(FallbackReason::NestedFixpoint));
        };
        m.frontier_rows += delta.len() as u64;
        m.resume.insert(key, ResumePair { acc: total.clone(), delta });
    }
    Ok(None)
}

/// One-step insertion frontier: the per-occurrence delta rewrite over the
/// recursive branches with the recursion variable pinned at the old total.
/// Returns `None` when a nested fixpoint inside a branch reads a changed
/// relation (the rewrite would under-approximate).
fn insert_frontier(
    recs: &[&Term],
    x: Sym,
    total: &Relation,
    changed: &FxHashSet<Sym>,
    batch: &DeltaBatch,
    old_rels: &FxHashMap<Sym, Relation>,
    new_db: &Database,
) -> Result<Option<Relation>> {
    let x_total = Term::cst(total.clone());
    let mut frontier = Relation::new(total.schema().clone());
    for branch in recs {
        if nested_fix_reads(branch, changed) {
            return Ok(None);
        }
        let b = branch.substitute(x, &x_total);
        let occs = count_changed_occs(&b, changed);
        for k in 0..occs {
            let variant = subst_occs(&b, changed, &mut 0, &mut |rel, i| {
                use std::cmp::Ordering::*;
                match i.cmp(&k) {
                    // Telescoping: old values before the delta position,
                    // the inserted rows at it, new values (the plain `Var`,
                    // resolved from `new_db`) after it.
                    Less => Some(Term::cst(old_value(rel, old_rels, new_db))),
                    Equal => Some(Term::cst(batch.rels[&rel].insert.clone())),
                    Greater => None,
                }
            });
            frontier.absorb(eval(&variant, new_db)?);
        }
    }
    Ok(Some(frontier.minus(total)))
}

/// Delete-and-rederive. Returns `(survivors, frontier, overdeleted)`:
/// the accumulator `S = T \ D`, the full-step rederivation frontier
/// `φ'(S) \ S` over the new base values, and `|D|`.
#[allow(clippy::too_many_arguments)]
fn dred(
    consts: &[&Term],
    recs: &[&Term],
    x: Sym,
    total: &Relation,
    changed: &FxHashSet<Sym>,
    batch: &DeltaBatch,
    old_rels: &FxHashMap<Sym, Relation>,
    new_db: &Database,
) -> Result<(Relation, Relation, u64)> {
    let x_total = Term::cst(total.clone());
    // Over-deletion seed D₀: every branch (const and recursive), every
    // occurrence of a changed relation replaced by its deleted rows, all
    // other changed occurrences and the recursion variable at their OLD
    // values — everything derivable in the old world from a deleted fact.
    let mut d = Relation::new(total.schema().clone());
    for branch in consts.iter().chain(recs.iter()) {
        let b = branch.substitute(x, &x_total);
        let occs = count_changed_occs(&b, changed);
        for k in 0..occs {
            let variant = subst_occs(&b, changed, &mut 0, &mut |rel, i| {
                if i == k {
                    Some(Term::cst(batch.rels[&rel].delete.clone()))
                } else {
                    Some(Term::cst(old_value(rel, old_rels, new_db)))
                }
            });
            d.absorb(intersect(&eval(&variant, new_db)?, total));
        }
    }
    // Propagate: anything derivable (in the old world) from an
    // over-deleted tuple is over-deleted too.
    let mut dk = d.clone();
    while !dk.is_empty() {
        let x_dk = Term::cst(dk.clone());
        let mut next = Relation::new(total.schema().clone());
        for branch in recs {
            let variant = subst_occs(branch, changed, &mut 0, &mut |rel, _| {
                Some(Term::cst(old_value(rel, old_rels, new_db)))
            })
            .substitute(x, &x_dk);
            next.absorb(eval(&variant, new_db)?);
        }
        dk = intersect(&next, total).minus(&d);
        d.absorb(dk.clone());
    }
    let overdeleted = d.len() as u64;
    let survivors = total.minus(&d);
    // Rederive with one FULL step over the new base values. Deliberately
    // not intersected with D: with mixed batches the step also produces
    // insertion-driven derivations that never were in the old total.
    let x_s = Term::cst(survivors.clone());
    let mut frontier = Relation::new(total.schema().clone());
    for branch in recs {
        frontier.absorb(eval(&branch.substitute(x, &x_s), new_db)?);
    }
    let frontier = frontier.minus(&survivors);
    Ok((survivors, frontier, overdeleted))
}

fn old_value(rel: Sym, old_rels: &FxHashMap<Sym, Relation>, new_db: &Database) -> Relation {
    // Changed relations come from the pre-delta snapshot; anything else is
    // identical in both worlds.
    old_rels
        .get(&rel)
        .or_else(|| new_db.relation(rel))
        .cloned()
        .unwrap_or_else(|| panic!("relation {rel} disappeared during maintenance"))
}

fn intersect(a: &Relation, b: &Relation) -> Relation {
    let mut out = Relation::new(a.schema().clone());
    for row in a.iter() {
        if b.contains(row) {
            out.insert(row.clone());
        }
    }
    out
}

/// True when a changed relation occurs anywhere under the right-hand side
/// of an antijoin within `t`.
fn changed_under_antijoin_rhs(t: &Term, changed: &FxHashSet<Sym>) -> bool {
    match t {
        Term::Antijoin(a, b) => {
            b.free_vars().iter().any(|v| changed.contains(v))
                || changed_under_antijoin_rhs(a, changed)
                || changed_under_antijoin_rhs(b, changed)
        }
        _ => t.children().iter().any(|c| changed_under_antijoin_rhs(c, changed)),
    }
}

/// True when a `Fix` subterm strictly inside `t` reads a changed relation.
fn nested_fix_reads(t: &Term, changed: &FxHashSet<Sym>) -> bool {
    t.children().iter().any(|c| match c {
        Term::Fix(_, _) => c.free_vars().iter().any(|v| changed.contains(v)),
        _ => nested_fix_reads(c, changed),
    })
}

/// Number of occurrences of changed relations in `t`, in the same
/// depth-first order [`subst_occs`] uses.
fn count_changed_occs(t: &Term, changed: &FxHashSet<Sym>) -> usize {
    match t {
        Term::Var(v) => usize::from(changed.contains(v)),
        Term::Cst(_) => 0,
        _ => t.children().iter().map(|c| count_changed_occs(c, changed)).sum(),
    }
}

/// Rebuilds `t` with every depth-first occurrence `i` of a changed
/// relation passed through `f(rel, i)`; `None` keeps the occurrence as-is
/// (its value then comes from whatever database the variant is evaluated
/// against). Fixpoint binders cannot shadow relation names (`F_cond`
/// rejects shadowing), so recursing under `Fix` is safe.
fn subst_occs(
    t: &Term,
    changed: &FxHashSet<Sym>,
    next: &mut usize,
    f: &mut dyn FnMut(Sym, usize) -> Option<Term>,
) -> Term {
    match t {
        Term::Var(v) if changed.contains(v) => {
            let i = *next;
            *next += 1;
            f(*v, i).unwrap_or_else(|| t.clone())
        }
        Term::Var(_) | Term::Cst(_) => t.clone(),
        Term::Filter(ps, inner) => {
            Term::Filter(ps.clone(), Box::new(subst_occs(inner, changed, next, f)))
        }
        Term::Rename(a, b, inner) => {
            Term::Rename(*a, *b, Box::new(subst_occs(inner, changed, next, f)))
        }
        Term::AntiProject(cs, inner) => {
            Term::AntiProject(cs.clone(), Box::new(subst_occs(inner, changed, next, f)))
        }
        Term::Join(a, b) => Term::Join(
            Box::new(subst_occs(a, changed, next, f)),
            Box::new(subst_occs(b, changed, next, f)),
        ),
        Term::Antijoin(a, b) => Term::Antijoin(
            Box::new(subst_occs(a, changed, next, f)),
            Box::new(subst_occs(b, changed, next, f)),
        ),
        Term::Union(a, b) => Term::Union(
            Box::new(subst_occs(a, changed, next, f)),
            Box::new(subst_occs(b, changed, next, f)),
        ),
        Term::Fix(v, body) => Term::Fix(*v, Box::new(subst_occs(body, changed, next, f))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Value;

    /// Transitive-closure database and plan: `μ(X = E ∪ π̃(ρ(X) ⋈ ρ(E)))`.
    fn tc_setup(edges: &[(u64, u64)]) -> (Database, Term, Sym) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let mid = db.intern("m");
        let x = db.intern("X");
        let e = db.insert_relation("E", Relation::from_pairs(src, dst, edges.iter().copied()));
        let step =
            Term::var(x).rename(dst, mid).join(Term::var(e).rename(src, mid)).antiproject(mid);
        let plan = Term::var(e).union(step).fix(x);
        (db, plan, e)
    }

    fn pair_row(a: u64, b: u64) -> Row {
        vec![Value::node(a), Value::node(b)].into_boxed_slice()
    }

    /// Simulates the driver's resume protocol centrally: fold the seed in,
    /// then run plain semi-naive from the resumed state.
    fn resumed_lfp(plan: &Term, resume: &ResumePair, db: &Database) -> Relation {
        let Term::Fix(x, body) = plan else { panic!("expected fixpoint plan") };
        let (consts, recs) = decompose_fixpoint(*x, body).unwrap();
        let mut seed = Relation::new(resume.acc.schema().clone());
        for c in &consts {
            seed.absorb(eval(c, db).unwrap());
        }
        let mut delta = resume.delta.clone();
        for row in seed.iter() {
            if !resume.acc.contains(row) {
                delta.insert(row.clone());
            }
        }
        let mut acc = resume.acc.clone();
        acc.absorb(seed);
        for row in delta.iter() {
            acc.insert(row.clone());
        }
        while !delta.is_empty() {
            let x_d = Term::cst(delta.clone());
            let mut new = Relation::new(acc.schema().clone());
            for r in &recs {
                new.absorb(eval(&r.substitute(*x, &x_d), db).unwrap());
            }
            let new = new.minus(&acc);
            acc.absorb(new.clone());
            delta = new;
        }
        acc
    }

    fn maintain_and_check(edges: &[(u64, u64)], ins: &[(u64, u64)], del: &[(u64, u64)]) {
        let (mut db, plan, e) = tc_setup(edges);
        let total = eval(&plan, &db).unwrap();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan), total);
        let mut batch = DeltaBatch::new();
        for &(a, b) in ins {
            batch.push_insert(&db, e, pair_row(a, b)).unwrap();
        }
        for &(a, b) in del {
            batch.push_delete(&db, e, pair_row(a, b)).unwrap();
        }
        batch.normalize(&db).unwrap();
        let (_, _, old) = batch.apply(&mut db).unwrap();
        let outcome = plan_maintenance(&plan, &db, &old, &batch, &totals).unwrap();
        let expected = eval(&plan, &db).unwrap();
        match outcome {
            IvmOutcome::Unaffected => {
                assert!(batch.is_empty(), "a non-empty E batch must affect the plan");
            }
            IvmOutcome::Maintain(m) => {
                let pair = &m.resume[&term_key(&plan)];
                let got = resumed_lfp(&plan, pair, &db);
                assert_eq!(
                    got.sorted_rows(),
                    expected.sorted_rows(),
                    "maintained view diverged for ins={ins:?} del={del:?}"
                );
            }
            IvmOutcome::Fallback(r) => panic!("unexpected fallback: {r}"),
        }
    }

    #[test]
    fn insert_extends_closure() {
        maintain_and_check(&[(1, 2), (2, 3)], &[(3, 4)], &[]);
    }

    #[test]
    fn insert_bridges_components() {
        maintain_and_check(&[(1, 2), (5, 6), (6, 7)], &[(2, 5)], &[]);
    }

    #[test]
    fn delete_cuts_closure() {
        maintain_and_check(&[(1, 2), (2, 3), (3, 4)], &[], &[(2, 3)]);
    }

    #[test]
    fn delete_with_alternative_path_keeps_rows() {
        // 1→2→3 and 1→3 directly: deleting 2→3 must keep (1,3).
        maintain_and_check(&[(1, 2), (2, 3), (1, 3), (3, 4)], &[], &[(2, 3)]);
    }

    #[test]
    fn delete_in_cycle_rederives() {
        // DRed over-deletes the whole cycle's closure, then rederives the
        // part still implied by the surviving edges.
        maintain_and_check(&[(1, 2), (2, 3), (3, 1)], &[], &[(3, 1)]);
    }

    #[test]
    fn mixed_batch_insert_and_delete() {
        maintain_and_check(&[(1, 2), (2, 3), (3, 4)], &[(4, 5), (0, 1)], &[(2, 3)]);
    }

    #[test]
    fn delete_everything() {
        maintain_and_check(&[(1, 2), (2, 3)], &[], &[(1, 2), (2, 3)]);
    }

    #[test]
    fn noop_batch_is_unaffected() {
        let (mut db, plan, e) = tc_setup(&[(1, 2), (2, 3)]);
        let totals = FxHashMap::default();
        let mut batch = DeltaBatch::new();
        batch.push_insert(&db, e, pair_row(1, 2)).unwrap(); // already present
        batch.normalize(&db).unwrap();
        assert!(batch.is_empty());
        let (_, _, old) = batch.apply(&mut db).unwrap();
        let outcome = plan_maintenance(&plan, &db, &old, &batch, &totals).unwrap();
        assert!(matches!(outcome, IvmOutcome::Unaffected));
    }

    #[test]
    fn unrelated_relation_is_unaffected() {
        let (mut db, plan, _) = tc_setup(&[(1, 2)]);
        let src = db.intern("src");
        let dst = db.intern("dst");
        let other = db.insert_relation("Other", Relation::from_pairs(src, dst, [(9, 9)]));
        let mut batch = DeltaBatch::new();
        batch.push_insert(&db, other, pair_row(7, 7)).unwrap();
        batch.normalize(&db).unwrap();
        let (_, _, old) = batch.apply(&mut db).unwrap();
        let outcome = plan_maintenance(&plan, &db, &old, &batch, &FxHashMap::default()).unwrap();
        assert!(matches!(outcome, IvmOutcome::Unaffected));
    }

    #[test]
    fn cold_cache_falls_back() {
        let (mut db, plan, e) = tc_setup(&[(1, 2), (2, 3)]);
        let mut batch = DeltaBatch::new();
        batch.push_insert(&db, e, pair_row(3, 4)).unwrap();
        batch.normalize(&db).unwrap();
        let (_, _, old) = batch.apply(&mut db).unwrap();
        let outcome = plan_maintenance(&plan, &db, &old, &batch, &FxHashMap::default()).unwrap();
        assert!(matches!(outcome, IvmOutcome::Fallback(FallbackReason::CacheCold)));
    }

    #[test]
    fn changed_under_antijoin_rhs_falls_back() {
        let (mut db, _, e) = tc_setup(&[(1, 2), (2, 3)]);
        let x = db.dict().lookup("X").unwrap();
        // μ(X = E ∪ (X ▷ E)): E on an antijoin RHS inside the body.
        let plan = Term::var(e).union(Term::var(x).antijoin(Term::var(e))).fix(x);
        let total = eval(&plan, &db).unwrap();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan), total);
        let mut batch = DeltaBatch::new();
        batch.push_insert(&db, e, pair_row(3, 4)).unwrap();
        batch.normalize(&db).unwrap();
        let (_, _, old) = batch.apply(&mut db).unwrap();
        let outcome = plan_maintenance(&plan, &db, &old, &batch, &totals).unwrap();
        assert!(matches!(outcome, IvmOutcome::Fallback(FallbackReason::NonMonotone)));
    }

    #[test]
    fn normalize_cancels_insert_delete_pairs() {
        let (db, _, e) = tc_setup(&[(1, 2)]);
        let mut batch = DeltaBatch::new();
        // Present row in both sides: net no-op under (R \ D) ∪ I.
        batch.push_insert(&db, e, pair_row(1, 2)).unwrap();
        batch.push_delete(&db, e, pair_row(1, 2)).unwrap();
        // Absent row in both sides: net insert.
        batch.push_insert(&db, e, pair_row(8, 9)).unwrap();
        batch.push_delete(&db, e, pair_row(8, 9)).unwrap();
        batch.normalize(&db).unwrap();
        let d = &batch.rels[&e];
        assert!(d.delete.is_empty());
        assert_eq!(d.insert.len(), 1);
        assert!(d.insert.contains(&pair_row(8, 9)));
    }
}
