//! # Dist-μ-RA — distributed evaluation of recursive graph queries
//!
//! Facade crate re-exporting the whole workspace. See the README for a tour
//! and `DESIGN.md` for the architecture.
//!
//! ```
//! use dist_mu_ra::prelude::*;
//!
//! // Tiny graph: 0 -> 1 -> 2, one edge label "a".
//! let mut db = Database::new();
//! let src = db.intern("src");
//! let dst = db.intern("dst");
//! let _ = db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
//!
//! // Transitive closure via the UCRPQ frontend.
//! let answers = QueryEngine::new(db).run_ucrpq("?x, ?y <- ?x a+ ?y").unwrap();
//! assert_eq!(answers.relation.len(), 3); // (0,1) (1,2) (0,2)
//! ```

pub use mura_core as core;
pub use mura_datagen as datagen;
pub use mura_datalog as datalog;
pub use mura_dist as dist;
pub use mura_pregel as pregel;
pub use mura_rewrite as rewrite;
pub use mura_serve as serve;
pub use mura_ucrpq as ucrpq;

pub mod prelude {
    //! One-stop imports for applications.
    pub use mura_core::{
        CancellationToken, Database, Dictionary, MuraError, Pred, Relation, Result, Schema, Sym,
        Term, Value,
    };
    pub use mura_datagen::{erdos_renyi, random_tree, uniprot_like, yago_like, Graph};
    pub use mura_dist::{Cluster, CommStats, ExecConfig, QueryEngine, QueryOutput};
    pub use mura_rewrite::{optimize, CostModel, Rewriter};
    pub use mura_serve::{Client, ServeConfig, ServeError, ServeStats, Server};
    pub use mura_ucrpq::{classify, parse_ucrpq, QueryClass, Ucrpq};
}
