//! `murash` — an interactive shell for Dist-μ-RA.
//!
//! ```sh
//! cargo run --release --bin murash
//! ```
//!
//! Load or generate a graph, then type UCRPQ queries:
//!
//! ```text
//! μ> .gen yago 1000
//! μ> ?x <- ?x isLocatedIn+ Japan
//! μ> .explain ?a, ?b <- ?a isLocatedIn+/dealsWith+ ?b
//! μ> .sql ?x, ?y <- ?x isLocatedIn+ ?y
//! μ> .help
//! ```

use dist_mu_ra::prelude::*;
use mura_core::analysis::TypeEnv;
use mura_core::sql::to_sql;
use mura_datagen::{load_edge_list, save_edge_list, UniprotConfig, YagoConfig};
use mura_datalog::ucrpq_to_program;
use mura_dist::exec::FixpointPlan;
use mura_dist::{FaultConfig, LocalEngine, TraceLevel};
use mura_ucrpq::to_mura;

struct Shell {
    db: Database,
    graph: Option<mura_datagen::Graph>,
    config: ExecConfig,
    optimize: bool,
    serving: Option<(mura_serve::TcpServeHandle, mura_serve::Server)>,
    /// When set (`--trace-out <path>`), every query runs with per-superstep
    /// tracing and the latest trace is written to this path as JSON.
    trace_out: Option<String>,
    /// When set (`--data-dir <dir>`), `.serve` starts durable: WAL +
    /// snapshots in this directory, recovery on restart.
    data_dir: Option<String>,
}

const HELP: &str = "\
commands:
  .gen yago <people> | uniprot <edges> | rnd <n> <p> [labels] | tree <n>
  .load <path>           load an edge-list file (src [label] dst, @node name id)
  .save <path>           save the current graph
  .rels                  list relations
  .consts                list named constants
  .const <name> <id>     name a node
  .insert [rel] <v> …    add a base row (node ids or constant names); a
                         running .serve instance maintains its cached views
  .delete [rel] <v> …    remove a base row (DRed maintenance server-side)
  .workers <n>           set worker count (default 4)
  .plan auto|gld|plw     fixpoint plan policy
  .engine setrdd|sorted  P_plw local engine
  .rewrites on|off       toggle the logical optimizer
  .chaos <seed>|off      deterministic fault injection (panics, transient
                         errors, message drops/dups, stragglers) + recovery
  .serve <addr>          serve queries over TCP (snapshot of the current db)
  .serve stop            stop the running server
  .classes <query>       classify a query (C1..C6)
  .profile <query>       run traced and print the superstep timeline
  .explain <query>       plan only: enumeration digest + physical plan
  .plan-of <query>       show the optimized logical plan
  .sql <query>           translate the optimized plan to PostgreSQL SQL
  .datalog <query>       show the left-to-right Datalog translation
  .help                  this text
  .quit                  exit
anything else is parsed as a UCRPQ query and executed.
start with `murash --connect <addr>` to talk to a remote .serve instance
(busy/overloaded replies carrying retry-after-ms are retried once; a
dropped connection is re-established once with backoff),
`murash --drain <addr>` to gracefully drain a remote server,
`murash --connect <addr> --mutate <file>` to stream a batch of
`insert`/`delete` lines and print one reply per mutation,
`--cluster <n>` to run queries on n real worker processes over TCP
(`--worker-bin <path>` overrides the mura-worker binary),
`--data-dir <dir>` to make .serve durable: every mutation is WAL-logged
and periodically snapshotted there, and a restarted `murash --data-dir`
.serve recovers to the exact pre-crash version with the same answers,
`--chaos <seed>` for fault injection, `--trace-out <path>` to dump each
query's trace as JSON (Chrome-trace compatible under \"traceEvents\";
combined with --cluster the file is the clock-aligned merge of every
worker process, one lane per worker).";

const USAGE: &str = "usage: murash [--connect <addr>] [--drain <addr>] [--mutate <file>] \
                     [--cluster <n>] [--worker-bin <path>] [--data-dir <dir>] \
                     [--chaos <seed>] [--trace-out <path>]";

fn main() {
    let mut connect: Option<String> = None;
    let mut drain: Option<String> = None;
    let mut mutate: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut trace_out: Option<String> = None;
    let mut cluster: Option<usize> = None;
    let mut worker_bin: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")),
            "--drain" => drain = Some(value("--drain")),
            "--mutate" => mutate = Some(value("--mutate")),
            "--chaos" => {
                let seed = value("--chaos");
                chaos_seed = Some(seed.parse().unwrap_or_else(|_| {
                    eprintln!("invalid seed '{seed}'\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--cluster" => {
                let n = value("--cluster");
                cluster = Some(n.parse().unwrap_or_else(|_| {
                    eprintln!("invalid worker count '{n}'\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--worker-bin" => worker_bin = Some(value("--worker-bin")),
            "--data-dir" => data_dir = Some(value("--data-dir")),
            _ => {
                eprintln!("unknown flag '{flag}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = drain {
        if let Err(e) = drain_remote(&addr) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(path) = mutate {
        let Some(addr) = connect else {
            eprintln!("--mutate requires --connect <addr>\n{USAGE}");
            std::process::exit(2);
        };
        if let Err(e) = mutate_remote(&addr, &path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(addr) = connect {
        if trace_out.is_some() {
            // Tracing happens inside the server process; a remote shell
            // only ever sees rendered text, never the trace itself.
            eprintln!(
                "--trace-out needs a local session: tracing runs server-side and its \
                 merged trace is not forwarded over the wire (use .profile against \
                 the server to render its timeline instead)\n{USAGE}"
            );
            std::process::exit(2);
        }
        if let Err(e) = client_repl(&addr) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut config = ExecConfig::default();
    if let Some(seed) = chaos_seed {
        config.fault = FaultConfig::chaos(seed);
        config.checkpoint_every = 2;
    }
    if let Some(n) = cluster {
        let n = n.max(1);
        let proc_cfg = mura_dist::ProcClusterConfig {
            workers: n,
            worker_bin: worker_bin.map(Into::into),
            ..Default::default()
        };
        match mura_dist::ProcCluster::spawn_with(proc_cfg) {
            Ok(proc) => {
                config.workers = n;
                config.backend = Some(proc as std::sync::Arc<dyn mura_dist::CommBackend>);
                println!(
                    "process cluster: {n} supervised workers over TCP \
                     (heartbeats, respawn on death)"
                );
            }
            Err(e) => {
                eprintln!("error: spawn process cluster: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut shell = Shell {
        db: Database::new(),
        graph: None,
        config,
        optimize: true,
        serving: None,
        trace_out,
        data_dir,
    };
    println!("Dist-μ-RA shell — .help for commands");
    if let Some(seed) = chaos_seed {
        println!("chaos mode: injecting faults with seed {seed} (checkpoint every 2 supersteps)");
    }
    if let Some(path) = &shell.trace_out {
        println!("tracing: every query runs at superstep level; latest trace goes to {path}");
    }
    while let Some(line) = mura_datagen::io::read_line("μ> ") {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
        if let Err(e) = shell.dispatch(line) {
            println!("error: {e}");
        }
    }
}

impl Shell {
    fn dispatch(&mut self, line: &str) -> Result<()> {
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let cmd = parts.next().unwrap_or("");
            let args: Vec<&str> = parts.collect();
            return self.command(cmd, &args, rest);
        }
        self.run_query(line)
    }

    fn command(&mut self, cmd: &str, args: &[&str], full: &str) -> Result<()> {
        let arg_err = |msg: &str| Err(MuraError::Frontend(msg.to_string()));
        match cmd {
            "help" => println!("{HELP}"),
            "gen" => {
                let graph = match args {
                    ["yago", people] => mura_datagen::yago_like(YagoConfig {
                        people: parse_num(people)?,
                        seed: 0xa60,
                    }),
                    ["uniprot", edges] => mura_datagen::uniprot_like(UniprotConfig {
                        target_edges: parse_num(edges)?,
                        seed: 0x09,
                    }),
                    ["rnd", n, p] | ["rnd", n, p, _] => {
                        let base = mura_datagen::erdos_renyi(
                            parse_num(n)?,
                            p.parse::<f64>()
                                .map_err(|_| MuraError::Frontend("invalid p".into()))?,
                            42,
                        );
                        if let Some(k) = args.get(3) {
                            let mut rng = mura_datagen::SplitMix64::seed_from_u64(42);
                            mura_datagen::with_random_labels(
                                &base,
                                parse_num(k)? as u32,
                                &mut rng,
                            )
                        } else {
                            base
                        }
                    }
                    ["tree", n] => mura_datagen::random_tree(parse_num(n)?, 42),
                    _ => return arg_err("usage: .gen yago <people> | uniprot <edges> | rnd <n> <p> [labels] | tree <n>"),
                };
                println!(
                    "generated: {} nodes, {} edges, labels: {}",
                    graph.n_nodes,
                    graph.edge_count(),
                    graph.labels.join(", ")
                );
                self.db = graph.to_database();
                self.graph = Some(graph);
            }
            "load" => {
                let [path] = args else { return arg_err("usage: .load <path>") };
                let graph = load_edge_list(path)?;
                println!("loaded: {} nodes, {} edges", graph.n_nodes, graph.edge_count());
                self.db = graph.to_database();
                self.graph = Some(graph);
            }
            "save" => {
                let [path] = args else { return arg_err("usage: .save <path>") };
                let Some(g) = &self.graph else {
                    return arg_err("no generated/loaded graph to save");
                };
                save_edge_list(g, path)?;
                println!("saved to {path}");
            }
            "rels" => {
                let mut rels: Vec<(String, usize)> = self
                    .db
                    .relations()
                    .map(|(s, r)| (self.db.dict().resolve(s).to_string(), r.len()))
                    .collect();
                rels.sort();
                for (name, len) in rels {
                    println!("  {name:<24} {len} rows");
                }
            }
            "consts" => {
                for (s, v) in self.db.constants() {
                    println!("  {:<24} {v}", self.db.dict().resolve(s));
                }
            }
            "const" => {
                let [name, id] = args else { return arg_err("usage: .const <name> <id>") };
                self.db.bind_constant(name, Value::node(parse_num(id)?));
                println!("bound {name}");
            }
            "workers" => {
                let [n] = args else { return arg_err("usage: .workers <n>") };
                self.config.workers = parse_num(n)? as usize;
            }
            "plan" => match args {
                ["auto"] => self.config.plan = FixpointPlan::Auto,
                ["gld"] => self.config.plan = FixpointPlan::ForceGld,
                ["plw"] => self.config.plan = FixpointPlan::ForcePlw,
                _ => return arg_err("usage: .plan auto|gld|plw"),
            },
            "engine" => match args {
                ["setrdd"] => self.config.local_engine = LocalEngine::SetRdd,
                ["sorted"] => self.config.local_engine = LocalEngine::Sorted,
                _ => return arg_err("usage: .engine setrdd|sorted"),
            },
            "rewrites" => match args {
                ["on"] => self.optimize = true,
                ["off"] => self.optimize = false,
                _ => return arg_err("usage: .rewrites on|off"),
            },
            "chaos" => match args {
                ["off"] => {
                    self.config.fault = FaultConfig::default();
                    self.config.checkpoint_every = 0;
                    println!("chaos off");
                }
                [seed] => {
                    self.config.fault = FaultConfig::chaos(parse_num(seed)?);
                    self.config.checkpoint_every = 2;
                    println!("chaos on (seed {seed}, checkpoint every 2 supersteps)");
                }
                _ => return arg_err("usage: .chaos <seed>|off"),
            },
            "insert" | "delete" => {
                let insert = cmd == "insert";
                if args.is_empty() {
                    return arg_err("usage: .insert|.delete [relation] <value> <value> …");
                }
                let batch = build_delta(&self.db, args, insert)?;
                let mut local = batch.clone();
                local.normalize(&self.db)?;
                if local.is_empty() {
                    println!("no-op (the database already looks like that)");
                } else {
                    let (ins, del, _) = local.apply(&mut self.db)?;
                    println!("applied: +{ins} -{del} rows");
                    if self.graph.take().is_some() {
                        println!("(the loaded graph snapshot is now stale; .save disabled)");
                    }
                }
                // A serving snapshot is kept live too: the same batch is
                // applied there and its cached views maintained in place.
                if let Some((_, server)) = &self.serving {
                    match server.apply_delta(batch) {
                        Ok(s) => println!(
                            "server: v={} +{} -{} maintained={} unaffected={} recomputed={}",
                            s.version,
                            s.inserted,
                            s.deleted,
                            s.maintained,
                            s.unaffected,
                            s.recomputed
                        ),
                        Err(e) => println!("server: ERR {e}"),
                    }
                }
            }
            "serve" => match args {
                ["stop"] => match self.serving.take() {
                    Some((handle, server)) => {
                        let stats = server.stats();
                        handle.stop();
                        server.shutdown();
                        println!(
                            "server stopped ({} completed, {} rejected)",
                            stats.completed, stats.rejected
                        );
                    }
                    None => println!("no server running"),
                },
                [addr] => {
                    if self.serving.is_some() {
                        return arg_err("already serving — .serve stop first");
                    }
                    // The server gets a snapshot: later shell-side loads
                    // don't propagate (stop and re-serve to republish).
                    let mut engine = QueryEngine::with_config(self.db.clone(), self.config.clone());
                    if !self.optimize {
                        engine = engine.without_rewrites();
                    }
                    let server = match &self.data_dir {
                        // Durable: recover the directory (snapshot + WAL
                        // tail win over the shell's in-memory snapshot),
                        // then keep logging every mutation there.
                        Some(dir) => {
                            let config = mura_serve::ServeConfig {
                                data_dir: Some(dir.into()),
                                ..Default::default()
                            };
                            let server = mura_serve::Server::recover(engine, config)
                                .map_err(|e| MuraError::Other(format!("recover {dir}: {e}")))?;
                            let stats = server.stats();
                            println!(
                                "durable in {dir}: recovered v={} (replayed {} WAL records)",
                                server.version(),
                                stats.recovery_replayed_batches
                            );
                            server
                        }
                        None => {
                            mura_serve::Server::start(engine, mura_serve::ServeConfig::default())
                        }
                    };
                    let handle = mura_serve::serve_tcp(&server, addr)
                        .map_err(|e| MuraError::Other(format!("bind {addr}: {e}")))?;
                    println!(
                        "serving on {} — connect with: murash --connect {}",
                        handle.addr(),
                        handle.addr()
                    );
                    self.serving = Some((handle, server));
                }
                _ => return arg_err("usage: .serve <addr> | .serve stop"),
            },
            "classes" => {
                let q = parse_ucrpq(strip_cmd(full, "classes"))?;
                println!("classes: {:?}", classify(&q));
            }
            "profile" => {
                let query = strip_cmd(full, "profile");
                if query.is_empty() {
                    return arg_err("usage: .profile <query>");
                }
                let out = self.execute_traced(query, TraceLevel::Superstep)?;
                println!(
                    "{} rows in {:.1?}  ({} fixpoint iterations)",
                    out.relation.len(),
                    out.wall(),
                    out.stats.fixpoint_iterations,
                );
                match out.trace() {
                    Some(trace) => {
                        println!("{}", trace.render_timeline());
                        let skew = trace.render_skew();
                        if !skew.is_empty() {
                            println!("worker skew (per fixpoint, max/median):");
                            print!("{skew}");
                        }
                        self.dump_trace(trace)?;
                    }
                    None => println!("(no trace recorded)"),
                }
            }
            "explain" => {
                // Plan only — no execution. Shows the enumeration digest
                // (candidate terms, per-group best costs, who won) and the
                // chosen physical plan. Against a `.serve` instance the
                // `.explain` verb additionally reports whether costing ran
                // from observed cardinalities.
                let query = strip_cmd(full, "explain");
                if query.is_empty() {
                    return arg_err("usage: .explain <query>");
                }
                let mut engine = QueryEngine::with_config(self.db.clone(), self.config.clone());
                if !self.optimize {
                    engine = engine.without_rewrites();
                }
                let (planned, report) = engine.plan_ucrpq_report(query, None)?;
                if let Some(r) = report {
                    println!(
                        "{} candidates in {} groups{} — chosen cost {:.0} ({}) vs pipeline {:.0}",
                        r.candidates,
                        r.groups,
                        if r.budget_hit { " (budget hit)" } else { "" },
                        r.winner_cost,
                        if r.enumerated_won { "enumerated" } else { "greedy pipeline" },
                        r.pipeline_cost,
                    );
                    for g in &r.group_summaries {
                        println!("  group [{:>12.0}] x{:<3} {}", g.best_cost, g.members, g.label);
                    }
                }
                print!("{}", mura_dist::explain_plan(&planned.plan, engine.db()));
                println!("planning: {:.1?}", planned.planning);
            }
            "plan-of" => {
                let query = strip_cmd(full, "plan-of");
                let q = parse_ucrpq(query)?;
                let term = to_mura(&q, &mut self.db)?;
                let plan = if self.optimize { optimize(&term, &mut self.db)? } else { term };
                println!("{}", plan.display(self.db.dict()));
            }
            "sql" => {
                let query = strip_cmd(full, "sql");
                let q = parse_ucrpq(query)?;
                let term = to_mura(&q, &mut self.db)?;
                // Merged fixpoints don't fit one CTE; keep the naive form
                // for SQL unless it translates.
                let plan =
                    if self.optimize { optimize(&term, &mut self.db)? } else { term.clone() };
                let env = TypeEnv::from_db(&self.db);
                match to_sql(&plan, self.db.dict(), env) {
                    Ok(sql) => println!("{sql}"),
                    Err(_) => {
                        let env = TypeEnv::from_db(&self.db);
                        println!("{}", to_sql(&term, self.db.dict(), env)?);
                    }
                }
            }
            "datalog" => {
                let q = parse_ucrpq(strip_cmd(full, "datalog"))?;
                println!("{}", ucrpq_to_program(&q, &self.db)?);
            }
            other => {
                return Err(MuraError::Frontend(format!(
                    "unknown command '.{other}' — .help for commands"
                )))
            }
        }
        Ok(())
    }

    fn execute(&mut self, query: &str) -> Result<QueryOutput> {
        // `--trace-out` upgrades every plain query to superstep tracing.
        let level =
            if self.trace_out.is_some() { TraceLevel::Superstep } else { self.config.trace };
        self.execute_traced(query, level)
    }

    fn execute_traced(&mut self, query: &str, level: TraceLevel) -> Result<QueryOutput> {
        let mut config = self.config.clone();
        config.trace = config.trace.max(level);
        let mut engine = QueryEngine::with_config(self.db.clone(), config);
        if !self.optimize {
            engine = engine.without_rewrites();
        }
        let out = engine.run_ucrpq(query)?;
        // Keep interned symbols (query columns, constants) for later use.
        self.db = engine.db().clone();
        Ok(out)
    }

    /// Writes `trace` to the `--trace-out` path (no-op when unset). Under
    /// `--cluster` this is the merged cluster trace: worker-side spans are
    /// flushed back over the wire and clock-aligned into one lane per
    /// worker process before the query returns.
    fn dump_trace(&self, trace: &mura_dist::QueryTrace) -> Result<()> {
        let Some(path) = &self.trace_out else { return Ok(()) };
        std::fs::write(path, trace.to_json())
            .map_err(|e| MuraError::Other(format!("write {path}: {e}")))?;
        let lanes: std::collections::BTreeSet<i32> =
            trace.events.iter().filter(|e| e.worker >= 0).map(|e| e.worker).collect();
        println!(
            "trace written to {path} ({} events, {} worker lanes)",
            trace.events.len(),
            lanes.len()
        );
        Ok(())
    }

    fn run_query(&mut self, query: &str) -> Result<()> {
        let out = self.execute(query)?;
        let rel = &out.relation;
        println!(
            "{} rows in {:.1?}  ({} fixpoint iterations, {} shuffles, {} rows shuffled, {} broadcast)",
            rel.len(),
            out.wall(),
            out.stats.fixpoint_iterations,
            out.comm.shuffles,
            out.comm.rows_shuffled,
            out.comm.rows_broadcast,
        );
        if let Some(note) = out.health_note() {
            println!("  {note}  [{}]", out.stats.fault);
        }
        for row in rel.sorted_rows().iter().take(20) {
            let vals: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            println!("  ({})", vals.join(", "));
        }
        if rel.len() > 20 {
            println!("  … {} more", rel.len() - 20);
        }
        if let Some(trace) = out.trace() {
            self.dump_trace(trace)?;
        }
        Ok(())
    }
}

/// Parses `[relation] value value …` into a one-row [`mura_serve::DeltaBatch`]
/// against `db`: an explicit leading relation name wins, otherwise the
/// database must hold exactly one relation; values are node ids or bound
/// constant names. Mirrors the server-side `.insert`/`.delete` parsing.
fn build_delta(db: &Database, args: &[&str], insert: bool) -> Result<mura_serve::DeltaBatch> {
    let err = |msg: String| MuraError::Frontend(msg);
    let mut tokens = args.to_vec();
    let rel = match db.dict().lookup(tokens[0]).filter(|s| db.relation(*s).is_some()) {
        Some(sym) => {
            tokens.remove(0);
            sym
        }
        None => {
            let mut rels = db.relations().map(|(s, _)| s);
            match (rels.next(), rels.next()) {
                (Some(only), None) => only,
                _ => {
                    return Err(err(format!(
                        "'{}' is not a relation and the database holds more than one",
                        tokens[0]
                    )))
                }
            }
        }
    };
    let arity = db.relation(rel).expect("relation resolved above").schema().arity();
    if tokens.len() != arity {
        return Err(err(format!(
            "relation '{}' has arity {arity}, got {} value(s)",
            db.dict().resolve(rel),
            tokens.len()
        )));
    }
    let row: Box<[Value]> = tokens
        .iter()
        .map(|tok| match tok.parse::<u64>() {
            Ok(id) => Ok(Value::node(id)),
            Err(_) => db
                .constant(tok)
                .ok_or_else(|| err(format!("'{tok}' is neither a node id nor a constant"))),
        })
        .collect::<Result<_>>()?;
    let mut batch = mura_serve::DeltaBatch::new();
    if insert {
        batch.push_insert(db, rel, row)?;
    } else {
        batch.push_delete(db, rel, row)?;
    }
    Ok(batch)
}

/// `murash --connect <addr> --mutate <file>`: streams a batch of
/// `insert`/`delete` lines (leading dot optional, `#` comments and blank
/// lines skipped) to a remote `.serve` instance, printing the one-line
/// reply for each. Busy replies carrying `retry-after-ms` are retried per
/// line up to [`MUTATE_RETRIES`] times, honoring the hint. Exits non-zero
/// if any mutation is rejected.
/// Bounded retries per `--mutate` line when the server answers busy with a
/// `retry-after-ms` hint.
const MUTATE_RETRIES: u32 = 3;

fn mutate_remote(addr: &str, path: &str) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    // No mid-stream reconnect here: a mutation whose reply was lost must
    // not be blindly resent (it may already have applied server-side).
    let mut conn = RemoteConn::connect(addr)?;
    let (mut applied, mut failed) = (0u64, 0u64);
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let verb = line.strip_prefix('.').unwrap_or(line);
        if !(verb.starts_with("insert") || verb.starts_with("delete")) {
            println!("{}:{}: ERR expected 'insert …' or 'delete …', got '{line}'", path, no + 1);
            failed += 1;
            continue;
        }
        // A busy/overloaded rejection is safe to resend: the server replied
        // without applying, so this is not the lost-reply case above. Honor
        // the server's retry-after-ms hint, bounded so a persistently
        // overloaded server fails the line instead of stalling the stream.
        let mut status;
        let mut attempts = 0u32;
        loop {
            (status, _) = conn.round_trip(&format!(".{verb}"))?;
            attempts += 1;
            let Some(ms) = retry_after_of(&status) else { break };
            if attempts > MUTATE_RETRIES {
                break;
            }
            println!(
                "{}:{}: {status} — retrying in {ms} ms ({attempts}/{MUTATE_RETRIES})",
                path,
                no + 1
            );
            std::thread::sleep(std::time::Duration::from_millis(ms.min(2_000)));
        }
        println!("{}:{}: {status}", path, no + 1);
        if status.starts_with("ERR") {
            failed += 1;
        } else {
            applied += 1;
        }
    }
    println!("{applied} applied, {failed} failed");
    if failed > 0 {
        std::process::exit(1);
    }
    Ok(())
}

/// Extracts the `retry-after-ms=<n>` token a busy/overloaded server embeds
/// in its `ERR` status line.
fn retry_after_of(status: &str) -> Option<u64> {
    status.split_whitespace().find_map(|tok| tok.strip_prefix("retry-after-ms=")?.parse().ok())
}

/// Socket read/write timeout for remote-mode connections: a hung or
/// half-dead server surfaces as a timeout error instead of blocking the
/// shell forever.
const CLIENT_IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// One client connection to a `.serve` instance, with socket timeouts
/// applied at connect time.
struct RemoteConn {
    reader: std::io::BufReader<std::net::TcpStream>,
    out: std::net::TcpStream,
}

impl RemoteConn {
    /// Connects with bounded exponential backoff (4 attempts, 50 → 400 ms)
    /// and arms both socket timeouts, so neither a refused port during a
    /// server restart nor a later stall hangs the client.
    fn connect(addr: &str) -> std::io::Result<RemoteConn> {
        let mut delay = std::time::Duration::from_millis(50);
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..4 {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(std::time::Duration::from_millis(400));
            }
            match std::net::TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT))?;
                    stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT))?;
                    let _ = stream.set_nodelay(true);
                    let reader = std::io::BufReader::new(stream.try_clone()?);
                    return Ok(RemoteConn { reader, out: stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one connect attempt"))
    }

    /// Sends one protocol line and reads the response block.
    fn round_trip(&mut self, line: &str) -> std::io::Result<(String, Vec<String>)> {
        use std::io::Write;
        self.out.write_all(format!("{line}\n").as_bytes())?;
        self.out.flush()?;
        mura_serve::read_response(&mut self.reader)
    }
}

/// Interactive client against a `.serve` instance: forwards each line over
/// TCP and prints the response block (status + body up to the `.`
/// terminator). A busy/overloaded rejection carrying a `retry-after-ms`
/// hint is honored with one automatic retry; a dropped or timed-out
/// connection is re-established once (with backoff) and the line resent.
fn client_repl(addr: &str) -> std::io::Result<()> {
    let mut conn = RemoteConn::connect(addr)?;
    println!(
        "connected to {addr} — server-side verbs: .stats .metrics .profile <query> .rels \
         .insert/.delete [rel] <v> … .deadline <ms> .drain .quit"
    );
    while let Some(line) = mura_datagen::io::read_line(&format!("μ@{addr}> ")) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (mut status, mut body) = match conn.round_trip(line) {
            Ok(resp) => resp,
            Err(e) => {
                // One-shot recovery: reconnect with backoff, resend once.
                // A second failure is terminal — no retry storms against a
                // server that is actually down.
                println!("connection lost ({e}) — reconnecting");
                conn = RemoteConn::connect(addr)?;
                conn.round_trip(line)?
            }
        };
        if status.starts_with("ERR ") {
            if let Some(ms) = retry_after_of(&status) {
                // Cap the wait: the hint is advisory and an interactive
                // shell should never stall for long.
                println!("{status} — retrying in {ms} ms");
                std::thread::sleep(std::time::Duration::from_millis(ms.min(2_000)));
                (status, body) = conn.round_trip(line)?;
            }
        }
        println!("{status}");
        for l in &body {
            println!("  {l}");
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
    }
    Ok(())
}

/// `murash --drain <addr>`: asks a remote `.serve` instance to drain
/// gracefully and prints its final counters.
fn drain_remote(addr: &str) -> std::io::Result<()> {
    let mut conn = RemoteConn::connect(addr)?;
    let (status, body) = conn.round_trip(".drain")?;
    println!("{status}");
    for l in &body {
        println!("  {l}");
    }
    if !status.starts_with("OK") {
        std::process::exit(1);
    }
    Ok(())
}

fn parse_num(s: &str) -> Result<u64> {
    s.parse().map_err(|_| MuraError::Frontend(format!("invalid number '{s}'")))
}

fn strip_cmd<'a>(full: &'a str, cmd: &str) -> &'a str {
    full[cmd.len()..].trim()
}
